//! Property-based tests of the simulator's physical invariants: unitarity of
//! every operator, conservation and normalisation of measurement
//! distributions, equivalence of the gate-level and kernel-level
//! constructions, and consistency between the two simulators.

use proptest::prelude::*;
use psq_sim::circuit;
use psq_sim::gates::QubitRegister;
use psq_sim::measure;
use psq_sim::oracle::{Database, Partition};
use psq_sim::reduced::ReducedState;
use psq_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_all_reflections_preserve_the_norm(
        n in 4u64..600,
        target_frac in 0.0f64..1.0,
        global_iters in 0u32..6,
        phase in 0.1f64..3.1,
    ) {
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db = Database::new(n, target);
        let mut psi = StateVector::uniform(n as usize);
        for _ in 0..global_iters {
            psi.grover_iteration(&db);
        }
        psi.apply_oracle_phase_rotation(&db, phase);
        psi.invert_about_mean_with_phase(phase);
        psi.invert_about_mean_excluding_target(&db);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop_block_operations_never_move_probability_between_blocks(
        block_exp in 1u32..5,
        k_exp in 1u32..4,
        iters in 1u32..6,
        target_frac in 0.0f64..1.0,
    ) {
        let k = 1u64 << k_exp;
        let n = k << block_exp;
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut psi = StateVector::uniform(n as usize);
        // Put the state somewhere generic first.
        psi.grover_iteration(&db);
        let before = psi.block_distribution(&partition);
        for _ in 0..iters {
            // The per-block diffusion alone is block-local...
            psi.invert_about_mean_per_block(&partition);
        }
        let after = psi.block_distribution(&partition);
        for (a, b) in before.iter().zip(after.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn prop_measurement_distributions_are_normalised_and_match_amplitudes(
        n in 2u64..300,
        target_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db = Database::new(n, target);
        let mut psi = StateVector::uniform(n as usize);
        psi.grover_iteration(&db);
        let mut rng = StdRng::seed_from_u64(seed);
        let index = measure::sample_index(&psi, &mut rng);
        prop_assert!(index < n as usize);
        // Collapsing returns the pre-measurement probability of that index.
        let mut copy = psi.clone();
        let p = measure::collapse(&mut copy, index);
        prop_assert!((p - psi.probability(index)).abs() < 1e-12);
        prop_assert!((copy.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop_gate_and_kernel_grover_agree(
        qubits in 2u32..9,
        target_frac in 0.0f64..1.0,
        iters in 1u32..5,
    ) {
        let n = 1u64 << qubits;
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db_kernel = Database::new(n, target);
        let db_circuit = Database::new(n, target);
        let mut kernel = StateVector::uniform(n as usize);
        let mut register = QubitRegister::uniform(qubits);
        for _ in 0..iters {
            kernel.grover_iteration(&db_kernel);
            circuit::grover_iteration_via_circuit(&mut register, &db_circuit);
        }
        prop_assert_eq!(db_kernel.queries(), db_circuit.queries());
        for x in 0..n as usize {
            prop_assert!((kernel.amplitude(x) - register.state().amplitude(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_reduced_and_statevector_agree_on_arbitrary_operator_sequences(
        block_exp in 1u32..5,
        k_exp in 1u32..4,
        schedule in proptest::collection::vec(0u8..3, 1..10),
        target_frac in 0.0f64..1.0,
    ) {
        let k = 1u64 << k_exp;
        let n = k << block_exp;
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut full = StateVector::uniform(n as usize);
        let mut reduced = ReducedState::uniform(n as f64, k as f64);
        for op in schedule {
            match op {
                0 => {
                    full.grover_iteration(&db);
                    reduced.grover_iteration();
                }
                1 => {
                    full.block_grover_iteration(&db, &partition);
                    reduced.block_grover_iteration();
                }
                _ => {
                    full.invert_about_mean_excluding_target(&db);
                    reduced.diffusion_excluding_target();
                }
            }
        }
        let recovered = ReducedState::from_state_vector(&full, &db, &partition, 1e-9);
        prop_assert!(recovered.is_some(), "state must remain block-symmetric");
        let recovered = recovered.expect("checked above");
        prop_assert!((recovered.amp_target() - reduced.amp_target()).abs() < 1e-9);
        prop_assert!((recovered.amp_target_block() - reduced.amp_target_block()).abs() < 1e-9);
        prop_assert!((recovered.amp_nontarget() - reduced.amp_nontarget()).abs() < 1e-9);
        prop_assert_eq!(db.queries(), reduced.queries());
    }

    #[test]
    fn prop_step3_circuit_distribution_is_a_probability_distribution(
        qubits in 3u32..9,
        k_exp in 1u32..3,
        target_frac in 0.0f64..1.0,
        l1 in 0u32..6,
    ) {
        let n = 1u64 << qubits;
        let k = 1u64 << k_exp;
        let target = ((n - 1) as f64 * target_frac).round() as u64;
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut psi = StateVector::uniform(n as usize);
        for _ in 0..l1 {
            psi.grover_iteration(&db);
        }
        let step3 = circuit::Step3Circuit::apply(&psi, &db);
        let dist = step3.address_distribution();
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(dist.iter().all(|&p| p >= -1e-15));
        let block_sum: f64 = partition
            .block_indices()
            .map(|b| step3.block_probability(&partition, b))
            .sum();
        prop_assert!((block_sum - 1.0).abs() < 1e-9);
    }
}
