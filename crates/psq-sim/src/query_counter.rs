//! Query accounting.
//!
//! Every result in the paper is a statement about the number of *oracle
//! queries* an algorithm makes.  To keep that accounting honest, the oracle
//! types in [`crate::oracle`] increment a shared [`QueryCounter`] on every
//! classical probe and every application of the quantum oracle
//! transformation; algorithms never report self-declared counts, the
//! experiment harness always reads the counter.
//!
//! The counter is an atomic so that Monte-Carlo drivers can share one oracle
//! across worker threads, and cheap enough (one relaxed fetch-add) that it
//! never perturbs benchmark timings measurably.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, thread-safe query counter.
///
/// Cloning the counter produces a handle onto the *same* underlying count.
#[derive(Clone, Debug, Default)]
pub struct QueryCounter {
    count: Arc<AtomicU64>,
}

impl QueryCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` queries.
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a single query.
    #[inline]
    pub fn increment(&self) {
        self.add(1);
    }

    /// Total queries recorded so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the count to zero (e.g. between experiment repetitions).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Returns a guard that captures the current total; calling
    /// [`QuerySpan::elapsed`] later yields the queries made since.
    pub fn span(&self) -> QuerySpan {
        QuerySpan {
            counter: self.clone(),
            start: self.total(),
        }
    }
}

/// Captures a starting point on a [`QueryCounter`] so a caller can measure
/// the queries consumed by one phase of an algorithm (e.g. Step 1 vs Step 2
/// of partial search).
#[derive(Clone, Debug)]
pub struct QuerySpan {
    counter: QueryCounter,
    start: u64,
}

impl QuerySpan {
    /// Queries recorded since this span was created.
    pub fn elapsed(&self) -> u64 {
        self.counter.total().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let c = QueryCounter::new();
        assert_eq!(c.total(), 0);
        c.increment();
        c.add(4);
        assert_eq!(c.total(), 5);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn clones_share_the_same_count() {
        let a = QueryCounter::new();
        let b = a.clone();
        a.increment();
        b.add(2);
        assert_eq!(a.total(), 3);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn spans_measure_increments_in_between() {
        let c = QueryCounter::new();
        c.add(10);
        let span = c.span();
        assert_eq!(span.elapsed(), 0);
        c.add(7);
        assert_eq!(span.elapsed(), 7);
        assert_eq!(c.total(), 17);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = QueryCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        handle.increment();
                    }
                });
            }
        });
        assert_eq!(c.total(), 8000);
    }
}
