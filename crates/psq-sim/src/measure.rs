//! Measurement of the address register.
//!
//! The partial-search algorithm ends with a standard-basis measurement of the
//! address register; only the first `k` bits (the block index) of the outcome
//! are used.  This module provides sampling of full outcomes and of block
//! outcomes, plus deterministic "read off the distribution" helpers used by
//! tests and by the figure generators.

use crate::oracle::Partition;
use crate::statevector::StateVector;
use rand::Rng;

/// Samples a standard-basis measurement outcome from the state.
///
/// The state is not collapsed (callers that need post-measurement states use
/// [`collapse`]).  Sampling uses the inverse-CDF walk over the probability
/// vector, which is exact up to floating-point rounding; any residual
/// probability deficit (at most ~1e-12 for normalised states) is assigned to
/// the last basis state.
pub fn sample_index<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> usize {
    let u: f64 = rng.gen::<f64>();
    let mut acc = 0.0f64;
    let n = state.len();
    for i in 0..n {
        acc += state.probability(i);
        if u < acc {
            return i;
        }
    }
    n - 1
}

/// Samples which block of the partition a measurement of the state falls in.
pub fn sample_block<R: Rng + ?Sized>(
    state: &StateVector,
    partition: &Partition,
    rng: &mut R,
) -> u64 {
    let index = sample_index(state, rng) as u64;
    partition.block_of(index)
}

/// The most probable block (deterministic readout used when the algorithm
/// guarantees essentially all probability mass sits in one block).
pub fn most_likely_block(state: &StateVector, partition: &Partition) -> u64 {
    let mut best_block = 0u64;
    let mut best_p = f64::NEG_INFINITY;
    for b in partition.block_indices() {
        let p = state.block_probability(partition, b);
        if p > best_p {
            best_p = p;
            best_block = b;
        }
    }
    best_block
}

/// Collapses the state onto basis state `index` (after observing it) and
/// returns the probability with which that outcome would have occurred.
pub fn collapse(state: &mut StateVector, index: usize) -> f64 {
    let p = state.probability(index);
    assert!(p > 0.0, "cannot collapse onto a zero-probability outcome");
    *state = StateVector::basis(state.len(), index);
    p
}

/// Collapses the state onto a block of the partition (a partial measurement
/// of the first `k` bits), renormalising the surviving amplitudes.  Returns
/// the probability of that block.
pub fn collapse_to_block(state: &mut StateVector, partition: &Partition, block: u64) -> f64 {
    let p = state.block_probability(partition, block);
    assert!(p > 1e-300, "cannot collapse onto a zero-probability block");
    let range = partition.block_range(block);
    let (start, end) = (range.start as usize, range.end as usize);
    let scale = 1.0 / p.sqrt();
    state.for_each_amplitude(|i, z| {
        if i >= start && i < end {
            *z = z.scale(scale);
        } else {
            *z = psq_math::Complex64::ZERO;
        }
    });
    p
}

/// Estimates the empirical distribution over blocks by repeated sampling.
///
/// Returns a vector of per-block frequencies summing to 1.  Used by the
/// Monte-Carlo validation of the success-probability claims.
pub fn empirical_block_distribution<R: Rng + ?Sized>(
    state: &StateVector,
    partition: &Partition,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample");
    let mut counts = vec![0u64; partition.blocks() as usize];
    for _ in 0..samples {
        let b = sample_block(state, partition, rng) as usize;
        counts[b] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_a_basis_state_is_deterministic() {
        let state = StateVector::basis(16, 9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(sample_index(&state, &mut rng), 9);
        }
    }

    #[test]
    fn sampling_respects_probabilities() {
        // 3/4 of the mass on index 0, 1/4 on index 1.
        let mut state = StateVector::from_real_amplitudes(&[0.75f64.sqrt(), 0.25f64.sqrt()]);
        state.normalize();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| sample_index(&state, &mut rng) == 0)
            .count();
        let frequency = hits as f64 / trials as f64;
        assert!(
            (frequency - 0.75).abs() < 0.02,
            "empirical frequency {frequency} too far from 0.75"
        );
    }

    #[test]
    fn block_sampling_and_most_likely_block() {
        let partition = Partition::new(12, 3);
        // All probability in block 1.
        let mut amps = vec![0.0; 12];
        for a in amps.iter_mut().take(8).skip(4) {
            *a = 0.5;
        }
        let state = StateVector::from_real_amplitudes(&amps);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_block(&state, &partition, &mut rng), 1);
        assert_eq!(most_likely_block(&state, &partition), 1);
    }

    #[test]
    fn collapse_produces_basis_state() {
        let mut state = StateVector::uniform(8);
        let p = collapse(&mut state, 3);
        assert!((p - 0.125).abs() < 1e-12);
        assert!((state.probability(3) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn collapse_to_block_renormalises() {
        let partition = Partition::new(8, 2);
        let db = Database::new(8, 6);
        let mut state = StateVector::uniform(8);
        state.grover_iteration(&db);
        let p_block = state.block_probability(&partition, 1);
        let mut collapsed = state.clone();
        let p = collapse_to_block(&mut collapsed, &partition, 1);
        assert!((p - p_block).abs() < 1e-12);
        assert!(collapsed.is_normalized(1e-12));
        assert!((collapsed.block_probability(&partition, 1) - 1.0).abs() < 1e-12);
        // Relative amplitudes inside the surviving block are preserved.
        let ratio_before = state.amplitude(6).re / state.amplitude(5).re;
        let ratio_after = collapsed.amplitude(6).re / collapsed.amplitude(5).re;
        assert!((ratio_before - ratio_after).abs() < 1e-9);
    }

    #[test]
    fn empirical_distribution_matches_exact_distribution() {
        let partition = Partition::new(8, 4);
        let db = Database::new(8, 5);
        let mut state = StateVector::uniform(8);
        state.grover_iteration(&db);
        let exact = state.block_distribution(&partition);
        let mut rng = StdRng::seed_from_u64(11);
        let empirical = empirical_block_distribution(&state, &partition, 40_000, &mut rng);
        for (e, x) in empirical.iter().zip(exact.iter()) {
            assert!((e - x).abs() < 0.02, "empirical {e} vs exact {x}");
        }
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapsing_onto_impossible_outcome_panics() {
        let mut state = StateVector::basis(4, 0);
        collapse(&mut state, 3);
    }
}
