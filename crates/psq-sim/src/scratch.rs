//! Reusable amplitude scratch space for the simulation hot path.
//!
//! The engine's steady state runs the same operator sequence over and over
//! (one execution per trial, many trials per job, many jobs per batch).
//! Most operators work fully in place on the state's amplitude planes, but a
//! few genuinely need a second buffer — the Step-3 ancilla circuit copies
//! the address register into a separate branch, and the reduced simulator's
//! cross-check materialises a full state. [`AmplitudeScratch`] is the
//! double-buffer those operators swap against: the buffer (a pair of
//! structure-of-arrays planes, [`psq_math::soa::SoaVec`]) is *taken* for the
//! duration of one application and *recycled* afterwards, so a run of any
//! length performs O(1) allocations instead of O(iterations × gates).

use crate::statevector::StateVector;
use psq_math::soa::SoaVec;

/// A recyclable plane buffer (see module docs).
///
/// Taking from an empty scratch allocates; recycling stores the planes for
/// the next take. The scratch never shrinks, so after the first trial at a
/// given dimension every subsequent take is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct AmplitudeScratch {
    buffer: SoaVec,
}

impl AmplitudeScratch {
    /// An empty scratch (first take allocates).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for dimension-`n` states.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buffer: SoaVec {
                re: Vec::with_capacity(n),
                im: Vec::with_capacity(n),
            },
        }
    }

    /// Takes the buffer, filled with a copy of `state`'s planes (the
    /// swap-out half of the double buffer). The returned planes reuse the
    /// recycled allocations when they are large enough.
    pub fn take_copy_of(&mut self, state: &StateVector) -> SoaVec {
        let mut buffer = std::mem::take(&mut self.buffer);
        let (re, im) = state.planes();
        buffer.copy_from_planes(re, im);
        buffer
    }

    /// Takes the raw buffer without filling it, for callers that overwrite
    /// every element themselves (e.g. [`StateVector::uniform_in`], which
    /// resizes the planes to the level it is about to simulate). The buffer
    /// may be empty on the first take; it keeps its allocation afterwards.
    pub(crate) fn take_raw(&mut self) -> SoaVec {
        std::mem::take(&mut self.buffer)
    }

    /// Returns a buffer to the scratch (the swap-in half). Keeps whichever
    /// of the current and returned allocations is larger.
    pub fn recycle(&mut self, buffer: SoaVec) {
        if buffer.re.capacity() > self.buffer.re.capacity() {
            self.buffer = buffer;
        }
    }

    /// Capacity of the currently held buffer, in amplitudes.
    pub fn capacity(&self) -> usize {
        self.buffer.re.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_copies_and_recycle_reuses_the_allocation() {
        let mut scratch = AmplitudeScratch::with_capacity(8);
        let state = StateVector::uniform(8);
        let taken = scratch.take_copy_of(&state);
        assert_eq!(taken.re, state.planes().0);
        assert_eq!(taken.im, state.planes().1);
        let ptr = taken.re.as_ptr();
        scratch.recycle(taken);
        let again = scratch.take_copy_of(&state);
        assert_eq!(again.re.as_ptr(), ptr, "allocation must be reused");
        assert_eq!(again.re, state.planes().0);
    }

    #[test]
    fn recycle_keeps_the_larger_buffer() {
        let mut scratch = AmplitudeScratch::new();
        scratch.recycle(SoaVec {
            re: Vec::with_capacity(16),
            im: Vec::with_capacity(16),
        });
        assert!(scratch.capacity() >= 16);
        scratch.recycle(SoaVec {
            re: Vec::with_capacity(4),
            im: Vec::with_capacity(4),
        });
        assert!(scratch.capacity() >= 16, "smaller buffer must not replace");
        scratch.recycle(SoaVec {
            re: Vec::with_capacity(64),
            im: Vec::with_capacity(64),
        });
        assert!(scratch.capacity() >= 64);
    }

    #[test]
    fn empty_scratch_still_produces_correct_copies() {
        let mut scratch = AmplitudeScratch::new();
        let state = StateVector::from_real_amplitudes(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let copy = scratch.take_copy_of(&state);
        assert_eq!(copy.re, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(copy.im, vec![0.0; 5]);
    }
}
