//! Reusable amplitude scratch space for the simulation hot path.
//!
//! The engine's steady state runs the same operator sequence over and over
//! (one execution per trial, many trials per job, many jobs per batch).
//! Most operators now work fully in place (see
//! [`crate::statevector::StateVector::amplitudes_mut`]), but a few genuinely
//! need a second amplitude buffer — the Step-3 ancilla circuit copies the
//! address register into a separate branch, and the reduced simulator's
//! cross-check materialises a full state. [`AmplitudeScratch`] is the
//! double-buffer those operators swap against: the buffer is *taken* for the
//! duration of one application and *recycled* afterwards, so a run of any
//! length performs O(1) allocations instead of O(iterations × gates).

use psq_math::complex::Complex64;

/// A recyclable amplitude buffer (see module docs).
///
/// Taking from an empty scratch allocates; recycling stores the buffer for
/// the next take. The scratch never shrinks, so after the first trial at a
/// given dimension every subsequent take is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct AmplitudeScratch {
    buffer: Vec<Complex64>,
}

impl AmplitudeScratch {
    /// An empty scratch (first take allocates).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for dimension-`n` states.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buffer: Vec::with_capacity(n),
        }
    }

    /// Takes the buffer, filled with a copy of `amps` (the swap-out half of
    /// the double buffer). The returned vector reuses the recycled
    /// allocation when it is large enough.
    pub fn take_copy_of(&mut self, amps: &[Complex64]) -> Vec<Complex64> {
        let mut buffer = std::mem::take(&mut self.buffer);
        buffer.clear();
        buffer.extend_from_slice(amps);
        buffer
    }

    /// Returns a buffer to the scratch (the swap-in half). Keeps whichever
    /// of the current and returned allocations is larger.
    pub fn recycle(&mut self, buffer: Vec<Complex64>) {
        if buffer.capacity() > self.buffer.capacity() {
            self.buffer = buffer;
        }
    }

    /// Capacity of the currently held buffer, in amplitudes.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_copies_and_recycle_reuses_the_allocation() {
        let mut scratch = AmplitudeScratch::with_capacity(8);
        let amps = vec![Complex64::from_real(0.5); 8];
        let taken = scratch.take_copy_of(&amps);
        assert_eq!(taken, amps);
        let ptr = taken.as_ptr();
        scratch.recycle(taken);
        let again = scratch.take_copy_of(&amps);
        assert_eq!(again.as_ptr(), ptr, "allocation must be reused");
        assert_eq!(again, amps);
    }

    #[test]
    fn recycle_keeps_the_larger_buffer() {
        let mut scratch = AmplitudeScratch::new();
        scratch.recycle(Vec::with_capacity(16));
        assert!(scratch.capacity() >= 16);
        scratch.recycle(Vec::with_capacity(4));
        assert!(scratch.capacity() >= 16, "smaller buffer must not replace");
        scratch.recycle(Vec::with_capacity(64));
        assert!(scratch.capacity() >= 64);
    }

    #[test]
    fn empty_scratch_still_produces_correct_copies() {
        let mut scratch = AmplitudeScratch::new();
        let amps: Vec<Complex64> = (0..5).map(|i| Complex64::from_real(i as f64)).collect();
        assert_eq!(scratch.take_copy_of(&amps), amps);
    }
}
