//! Stage traces: labelled amplitude snapshots taken as an algorithm runs.
//!
//! Figure 1 of the paper shows the amplitudes of a twelve-item database at
//! five labelled stages (A)–(E); Figures 3–5 show the geometry of the state
//! before and after each step of the general algorithm.  The algorithms in
//! `psq-partial` record an [`AmplitudeSummary`] after each step into a
//! [`StageTrace`], and the figure generators in `psq-bench` print those
//! traces.  Both the full state-vector simulator and the reduced simulator
//! can produce summaries, so traces are available at any database size.

use crate::oracle::{Database, Partition};
use crate::reduced::ReducedState;
use crate::statevector::StateVector;

/// A compact description of a block-symmetric amplitude configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmplitudeSummary {
    /// Amplitude of the target state.
    pub amp_target: f64,
    /// Mean amplitude of the non-target states inside the target block.
    pub amp_target_block: f64,
    /// Mean amplitude of the states in the non-target blocks.
    pub amp_nontarget: f64,
    /// Probability of measuring the target item exactly.
    pub p_target: f64,
    /// Probability of measuring some item of the target block.
    pub p_target_block: f64,
    /// Oracle queries charged so far.
    pub queries: u64,
}

impl AmplitudeSummary {
    /// Builds a summary from a full state vector.
    pub fn from_state_vector(state: &StateVector, db: &Database, partition: &Partition) -> Self {
        let target = db.target();
        let target_block = partition.block_of(target);
        let range = partition.block_range(target_block);
        let block_len = (range.end - range.start) as f64;

        let mut sum_tb = 0.0f64;
        for x in range.start..range.end {
            if x != target {
                sum_tb += state.amplitude(x as usize).re;
            }
        }
        let amp_target_block = if block_len > 1.0 {
            sum_tb / (block_len - 1.0)
        } else {
            0.0
        };

        let n = partition.size() as f64;
        let mut sum_nb = 0.0f64;
        for b in partition.block_indices() {
            if b == target_block {
                continue;
            }
            let r = partition.block_range(b);
            for x in r {
                sum_nb += state.amplitude(x as usize).re;
            }
        }
        let nontarget_count = n - block_len;
        let amp_nontarget = if nontarget_count > 0.0 {
            sum_nb / nontarget_count
        } else {
            0.0
        };

        Self {
            amp_target: state.amplitude(target as usize).re,
            amp_target_block,
            amp_nontarget,
            p_target: state.probability(target as usize),
            p_target_block: state.block_probability(partition, target_block),
            queries: db.queries(),
        }
    }

    /// Builds a summary from a reduced simulator state.
    pub fn from_reduced(state: &ReducedState) -> Self {
        Self {
            amp_target: state.amp_target(),
            amp_target_block: state.amp_target_block(),
            amp_nontarget: state.amp_nontarget(),
            p_target: state.target_probability(),
            p_target_block: state.target_block_probability(),
            queries: state.queries(),
        }
    }
}

/// A labelled sequence of amplitude snapshots.
#[derive(Clone, Debug, Default)]
pub struct StageTrace {
    stages: Vec<(String, AmplitudeSummary)>,
}

impl StageTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a snapshot under a label such as `"after step 1"`.
    pub fn record(&mut self, label: impl Into<String>, summary: AmplitudeSummary) {
        self.stages.push((label.into(), summary));
    }

    /// Records a snapshot of a full state vector.
    pub fn record_state(
        &mut self,
        label: impl Into<String>,
        state: &StateVector,
        db: &Database,
        partition: &Partition,
    ) {
        self.record(
            label,
            AmplitudeSummary::from_state_vector(state, db, partition),
        );
    }

    /// Records a snapshot of a reduced state.
    pub fn record_reduced(&mut self, label: impl Into<String>, state: &ReducedState) {
        self.record(label, AmplitudeSummary::from_reduced(state));
    }

    /// The recorded stages in order.
    pub fn stages(&self) -> &[(String, AmplitudeSummary)] {
        &self.stages
    }

    /// Number of recorded stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Looks up a stage by its label.
    pub fn get(&self, label: &str) -> Option<&AmplitudeSummary> {
        self.stages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, summary)| summary)
    }

    /// The last recorded stage.
    pub fn last(&self) -> Option<&AmplitudeSummary> {
        self.stages.last().map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn summary_of_uniform_state() {
        let db = Database::new(12, 5);
        let partition = Partition::new(12, 3);
        let state = StateVector::uniform(12);
        let s = AmplitudeSummary::from_state_vector(&state, &db, &partition);
        let amp = 1.0 / 12f64.sqrt();
        assert_close(s.amp_target, amp, 1e-12);
        assert_close(s.amp_target_block, amp, 1e-12);
        assert_close(s.amp_nontarget, amp, 1e-12);
        assert_close(s.p_target, 1.0 / 12.0, 1e-12);
        assert_close(s.p_target_block, 1.0 / 3.0, 1e-12);
        assert_eq!(s.queries, 0);
    }

    #[test]
    fn full_and_reduced_summaries_agree() {
        let db = Database::new(32, 20);
        let partition = Partition::new(32, 4);
        let mut full = StateVector::uniform(32);
        let mut reduced = ReducedState::uniform(32.0, 4.0);
        for _ in 0..3 {
            full.grover_iteration(&db);
            reduced.grover_iteration();
        }
        let a = AmplitudeSummary::from_state_vector(&full, &db, &partition);
        let b = AmplitudeSummary::from_reduced(&reduced);
        assert_close(a.amp_target, b.amp_target, 1e-9);
        assert_close(a.amp_target_block, b.amp_target_block, 1e-9);
        assert_close(a.amp_nontarget, b.amp_nontarget, 1e-9);
        assert_close(a.p_target_block, b.p_target_block, 1e-9);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn trace_records_and_looks_up_stages() {
        let mut trace = StageTrace::new();
        assert!(trace.is_empty());
        let db = Database::new(12, 0);
        let partition = Partition::new(12, 3);
        let state = StateVector::uniform(12);
        trace.record_state("A", &state, &db, &partition);
        let reduced = ReducedState::uniform(12.0, 3.0);
        trace.record_reduced("B", &reduced);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert!(trace.get("A").is_some());
        assert!(trace.get("missing").is_none());
        assert_close(trace.last().unwrap().p_target_block, 1.0 / 3.0, 1e-12);
        assert_eq!(trace.stages()[0].0, "A");
    }
}
