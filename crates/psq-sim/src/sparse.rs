//! Sparse value-class simulation for huge-`N` exact search.
//!
//! Partial-search states are massively structured: every operator the
//! GroverR05 schedule applies (oracle reflection, global diffusion,
//! per-block diffusion, Step-3 inversion) maps states with few distinct
//! amplitude values to states with few distinct amplitude values.  Instead
//! of `N` amplitudes, [`SparseState`] stores one `(value, population)`
//! entry per *amplitude-equivalence class* and applies each operator in
//! `O(#classes)` arithmetic — the exact dynamics at `N = 2^30` and beyond,
//! where the dense SoA planes cannot even allocate.
//!
//! # The representation ladder
//!
//! The state climbs down (and back up) a three-rung ladder, always using
//! the cheapest representation that is still exact:
//!
//! 1. **`Symmetric`** — the canonical three-class form
//!    `(a_t, a_tb, a_nb)`, held as a [`ReducedState`] so bulk rotations run
//!    the *identical* closed-form arithmetic as the reduced backend.
//!    Ideal runs and oracle-fault trajectories never leave this rung
//!    (a skipped oracle call followed by a diffusion maps symmetric states
//!    to symmetric states), which is why fault-noise runs stay `O(1)` per
//!    fused stretch even at `N = 2^34`.
//! 2. **`Classes`** — a vector of *slice classes*: per block, address sets
//!    of the form `{x in block : x & mask == bits}` minus the pinned
//!    addresses (the target, plus at most one depolarizing-collapse
//!    survivor), each carrying one `Complex64` value and an exact
//!    population count.  A depolarizing collapse lands here (`≤ K + 2`
//!    entries); a dephasing phase kick *splits* classes on the kicked bit
//!    (populations are recounted exactly with a digit-DP, never
//!    enumerated).
//! 3. **`Map`** — a `BTreeMap` from basis state to amplitude, the
//!    degraded form for states with no exploitable structure left.  Entered
//!    when splitting would exceed the class budget; only representable for
//!    `n ≤ `[`SPARSE_MAP_CEILING`].  Beyond that the simulator gives up
//!    with a panic naming the budget — the planner routes such jobs away
//!    from the sparse backend, so a served job never hits it.
//!
//! A depolarizing collapse rebuilds the canonical class partition (or, for
//! a collapse onto the target, returns all the way to `Symmetric`), so the
//! ladder is climbed back up as structure reappears.
//!
//! # Determinism contract
//!
//! Identical to the dense kernels: evolution is a pure function of the
//! operator sequence, all sums run in a fixed documented order (slice
//! classes in `(block, mask, bits)` order, then the target, then the
//! pinned survivor), `BTreeMap` iteration is key-ordered, and sampling
//! consumes exactly one `f64` draw.  No hashing of floats, no
//! iteration-order dependence, no thread-count dependence.

use crate::noise::QueryNoise;
use crate::reduced::ReducedState;
use psq_math::complex::Complex64;
use rand::Rng;
use std::collections::BTreeMap;

/// Default ceiling on slice-class count before degrading to the basis map.
pub const DEFAULT_MAX_CLASSES: usize = 4096;

/// Largest `n` the degraded basis-map rung can represent.  Dephasing at
/// larger `n` is unservable on the sparse backend; the planner enforces
/// this, and [`SparseState`] panics with a clear message if forced.
pub const SPARSE_MAP_CEILING: u64 = 1 << 22;

/// One slice class: the addresses of `block` matching `x & mask == bits`,
/// minus any pinned addresses, all sharing the amplitude `value`.
#[derive(Clone, Copy, Debug)]
struct SliceClass {
    block: u64,
    mask: u64,
    bits: u64,
    pop: u64,
    value: Complex64,
}

/// A pinned single address (the survivor of a depolarizing collapse onto a
/// non-target state) carrying its own amplitude.
#[derive(Clone, Copy, Debug)]
struct Pinned {
    addr: u64,
    value: Complex64,
}

/// The slice-class rung: target amplitude, optional pinned survivor, and
/// the slice classes partitioning every remaining address.
#[derive(Clone, Debug)]
struct ClassState {
    target_value: Complex64,
    singled: Option<Pinned>,
    classes: Vec<SliceClass>,
}

#[derive(Clone, Debug)]
enum Repr {
    Symmetric(ReducedState),
    Classes(ClassState),
    Map(BTreeMap<u64, Complex64>),
}

/// Exact sparse simulator over amplitude-equivalence classes (see module
/// docs for the representation ladder and determinism contract).
#[derive(Clone, Debug)]
pub struct SparseState {
    n: u64,
    k: u64,
    bsize: u64,
    target: u64,
    target_block: u64,
    queries: u64,
    split_events: u64,
    ever_degraded: bool,
    max_classes: usize,
    repr: Repr,
}

/// Counts the addresses `x` in `[0, limit)` with `x & mask == bits`.
///
/// Standard digit DP over the bits of `limit`: every `1` bit of `limit`
/// contributes the count of addresses that share the higher bits of
/// `limit`, have a `0` at that position, and range freely below — provided
/// the shared prefix (and the forced `0`) are consistent with the
/// constraint.
fn count_below(limit: u64, mask: u64, bits: u64) -> u64 {
    debug_assert_eq!(bits & !mask, 0, "constraint bits outside mask");
    let mut count = 0u64;
    for i in (0..64).rev() {
        if (limit >> i) & 1 == 1 {
            let above = if i == 63 { 0 } else { !0u64 << (i + 1) };
            let prefix_ok = (limit & mask & above) == (bits & above);
            let here_ok = (mask >> i) & 1 == 0 || (bits >> i) & 1 == 0;
            if prefix_ok && here_ok {
                let below = (1u64 << i) - 1;
                count += 1u64 << (!mask & below).count_ones();
            }
        }
    }
    count
}

/// Counts the addresses `x` in `[lo, hi)` with `x & mask == bits`, without
/// enumerating them.
pub fn count_in_range(lo: u64, hi: u64, mask: u64, bits: u64) -> u64 {
    if hi <= lo {
        return 0;
    }
    count_below(hi, mask, bits) - count_below(lo, mask, bits)
}

impl SparseState {
    /// The uniform superposition over `n` items in `k` equal blocks, with
    /// the marked item at `target`.
    ///
    /// Unlike the dense simulators the oracle/partition geometry is part of
    /// the state: classes are defined relative to the target and the block
    /// boundaries, so they must be fixed up front.
    pub fn uniform(n: u64, k: u64, target: u64) -> Self {
        assert!(n >= 2, "database must have at least two items");
        assert!(
            (1..=n).contains(&k),
            "block count {k} out of range for n = {n}"
        );
        assert_eq!(n % k, 0, "block count {k} must divide n = {n}");
        assert!(target < n, "target {target} out of range for n = {n}");
        let bsize = n / k;
        Self {
            n,
            k,
            bsize,
            target,
            target_block: target / bsize,
            queries: 0,
            split_events: 0,
            ever_degraded: false,
            max_classes: DEFAULT_MAX_CLASSES,
            repr: Repr::Symmetric(ReducedState::uniform(n as f64, k as f64)),
        }
    }

    /// Overrides the slice-class budget (degrade-to-map threshold).
    pub fn with_max_classes(mut self, max_classes: usize) -> Self {
        assert!(
            max_classes >= 4,
            "class budget must allow the canonical form"
        );
        self.max_classes = max_classes;
        self
    }

    /// Database size `N`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of blocks `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Items per block `N / K`.
    pub fn block_size(&self) -> u64 {
        self.bsize
    }

    /// The marked address.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The block containing the marked address.
    pub fn target_block(&self) -> u64 {
        self.target_block
    }

    /// Oracle queries charged so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Number of classes split by dephasing kicks so far (diagnostic).
    pub fn split_events(&self) -> u64 {
        self.split_events
    }

    /// Whether the state ever fell to the degraded basis-map rung.
    pub fn ever_degraded(&self) -> bool {
        self.ever_degraded
    }

    /// Whether the state is currently on the degraded basis-map rung.
    pub fn is_degraded(&self) -> bool {
        matches!(self.repr, Repr::Map(_))
    }

    /// Number of tracked amplitude classes in the current representation:
    /// 3 for the symmetric rung (marked / block-marked / rest), the exact
    /// entry count (slice classes + target + pinned survivor) for the class
    /// rung, and the basis-state count for the map rung.
    pub fn class_count(&self) -> usize {
        match &self.repr {
            Repr::Symmetric(_) => 3,
            Repr::Classes(cs) => cs.classes.len() + 1 + usize::from(cs.singled.is_some()),
            Repr::Map(map) => map.len(),
        }
    }

    /// The configured class budget.
    pub fn max_classes(&self) -> usize {
        self.max_classes
    }

    // ------------------------------------------------------------------
    // Amplitude access
    // ------------------------------------------------------------------

    /// The amplitude of basis state `x` (exact in every representation).
    pub fn amplitude(&self, x: u64) -> Complex64 {
        assert!(x < self.n, "address {x} out of range");
        match &self.repr {
            Repr::Symmetric(r) => {
                let value = if x == self.target {
                    r.amp_target()
                } else if x / self.bsize == self.target_block {
                    r.amp_target_block()
                } else {
                    r.amp_nontarget()
                };
                Complex64::from_real(value)
            }
            Repr::Classes(cs) => {
                if x == self.target {
                    return cs.target_value;
                }
                if let Some(p) = cs.singled.as_ref().filter(|p| p.addr == x) {
                    return p.value;
                }
                let block = x / self.bsize;
                for c in &cs.classes {
                    if c.block == block && x & c.mask == c.bits {
                        return c.value;
                    }
                }
                unreachable!("address {x} not covered by any class (invariant breach)");
            }
            Repr::Map(map) => map[&x],
        }
    }

    /// The probability of measuring basis state `x`.
    pub fn probability(&self, x: u64) -> f64 {
        self.amplitude(x).norm_sqr()
    }

    /// The probability of measuring the marked item.
    pub fn target_probability(&self) -> f64 {
        match &self.repr {
            Repr::Symmetric(r) => r.target_probability(),
            Repr::Classes(cs) => cs.target_value.norm_sqr(),
            Repr::Map(map) => map[&self.target].norm_sqr(),
        }
    }

    /// The probability of the measurement landing anywhere in `block`.
    pub fn block_probability(&self, block: u64) -> f64 {
        assert!(block < self.k, "block {block} out of range");
        match &self.repr {
            Repr::Symmetric(r) => {
                if block == self.target_block {
                    r.target_block_probability()
                } else {
                    self.bsize as f64 * r.amp_nontarget() * r.amp_nontarget()
                }
            }
            Repr::Classes(cs) => {
                let mut p = 0.0f64;
                for c in &cs.classes {
                    if c.block == block {
                        p += c.pop as f64 * c.value.norm_sqr();
                    }
                }
                if block == self.target_block {
                    p += cs.target_value.norm_sqr();
                }
                if let Some(pin) = cs.singled.as_ref().filter(|p| p.addr / self.bsize == block) {
                    p += pin.value.norm_sqr();
                }
                p
            }
            Repr::Map(map) => {
                let lo = block * self.bsize;
                map.range(lo..lo + self.bsize)
                    .map(|(_, v)| v.norm_sqr())
                    .sum()
            }
        }
    }

    /// Total squared norm (should remain 1 up to round-off).
    pub fn norm_sqr(&self) -> f64 {
        match &self.repr {
            Repr::Symmetric(r) => r.norm_sqr(),
            _ => (0..self.k).map(|b| self.block_probability(b)).sum(),
        }
    }

    /// Samples a block index from the block-probability distribution,
    /// consuming exactly one `f64` draw — the same walk (in block order)
    /// the dense `measure::sample_block` performs over amplitudes.
    pub fn sample_block<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0f64;
        for block in 0..self.k {
            acc += self.block_probability(block);
            if u < acc {
                return block;
            }
        }
        self.k - 1
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    /// Charges `count` oracle queries without touching the state (the
    /// faulty-oracle bookkeeping: the call is paid for but does nothing).
    pub fn charge_queries(&mut self, count: u64) {
        self.queries += count;
    }

    /// The oracle reflection: phase-flips the marked amplitude. One query.
    pub fn oracle_flip(&mut self) {
        self.queries += 1;
        match &mut self.repr {
            // Delegate the arithmetic; `self.queries` stays authoritative
            // (the inner counter is never read back).
            Repr::Symmetric(r) => r.oracle_flip(),
            Repr::Classes(cs) => cs.target_value = -cs.target_value,
            Repr::Map(map) => {
                let v = map.get_mut(&self.target).expect("target in map");
                *v = -*v;
            }
        }
    }

    /// Global inversion about the mean of all `N` amplitudes.
    pub fn invert_about_mean(&mut self) {
        match &mut self.repr {
            Repr::Symmetric(r) => r.global_diffusion(),
            Repr::Classes(cs) => {
                let twice = Self::class_sum(cs).scale(2.0 / self.n as f64);
                for c in &mut cs.classes {
                    c.value = twice - c.value;
                }
                cs.target_value = twice - cs.target_value;
                if let Some(p) = &mut cs.singled {
                    p.value = twice - p.value;
                }
            }
            Repr::Map(map) => {
                let sum: Complex64 = map.values().copied().sum();
                let twice = sum.scale(2.0 / self.n as f64);
                for v in map.values_mut() {
                    *v = twice - *v;
                }
            }
        }
    }

    /// Per-block inversion about each block's own mean.
    pub fn invert_about_mean_per_block(&mut self) {
        let bsize = self.bsize;
        let bsize_f = bsize as f64;
        let target = self.target;
        match &mut self.repr {
            Repr::Symmetric(r) => r.block_diffusion(),
            Repr::Classes(cs) => {
                // Per-block sums, accumulated in the fixed order (classes,
                // then target, then survivor).  Keyed storage is fine: each
                // key's accumulation order follows the iteration below.
                let mut sums: BTreeMap<u64, Complex64> = BTreeMap::new();
                for c in &cs.classes {
                    *sums.entry(c.block).or_insert(Complex64::ZERO) += c.value.scale(c.pop as f64);
                }
                *sums.entry(target / bsize).or_insert(Complex64::ZERO) += cs.target_value;
                if let Some(p) = &cs.singled {
                    *sums.entry(p.addr / bsize).or_insert(Complex64::ZERO) += p.value;
                }
                let twice_of = |block: u64| {
                    sums.get(&block)
                        .copied()
                        .unwrap_or(Complex64::ZERO)
                        .scale(2.0 / bsize_f)
                };
                for c in &mut cs.classes {
                    c.value = twice_of(c.block) - c.value;
                }
                cs.target_value = twice_of(target / bsize) - cs.target_value;
                if let Some(p) = &mut cs.singled {
                    p.value = twice_of(p.addr / bsize) - p.value;
                }
            }
            Repr::Map(map) => {
                let k = self.n / bsize;
                for block in 0..k {
                    let lo = block * bsize;
                    let sum: Complex64 = map.range(lo..lo + bsize).map(|(_, v)| *v).sum();
                    let twice = sum.scale(2.0 / bsize_f);
                    for (_, v) in map.range_mut(lo..lo + bsize) {
                        *v = twice - *v;
                    }
                }
            }
        }
    }

    /// Step 3's controlled inversion: reflect the `N − 1` non-target
    /// amplitudes about their mean, leaving the target fixed. Charges one
    /// query (the marking operation `M`).
    pub fn invert_about_mean_excluding_target(&mut self) {
        self.queries += 1;
        let n_f = self.n as f64;
        match &mut self.repr {
            Repr::Symmetric(r) => r.diffusion_excluding_target(),
            Repr::Classes(cs) => {
                let twice = (Self::class_sum(cs) - cs.target_value).scale(2.0 / (n_f - 1.0));
                for c in &mut cs.classes {
                    c.value = twice - c.value;
                }
                if let Some(p) = &mut cs.singled {
                    p.value = twice - p.value;
                }
            }
            Repr::Map(map) => {
                let sum: Complex64 = map.values().copied().sum();
                let twice = (sum - map[&self.target]).scale(2.0 / (n_f - 1.0));
                for (x, v) in map.iter_mut() {
                    if *x != self.target {
                        *v = twice - *v;
                    }
                }
            }
        }
    }

    /// One standard Grover iteration (oracle flip, then global inversion).
    /// One query.
    pub fn grover_iteration(&mut self) {
        self.oracle_flip();
        self.invert_about_mean();
    }

    /// `iters` standard Grover iterations.  On the symmetric rung this
    /// delegates to [`ReducedState::grover_iterations`], so a bulk run is
    /// the identical closed-form `O(1)` arithmetic; otherwise it steps.
    pub fn grover_iterations(&mut self, iters: u64) {
        if iters == 0 {
            return;
        }
        if let Repr::Symmetric(r) = &mut self.repr {
            r.grover_iterations(iters);
            self.queries += iters;
            return;
        }
        for _ in 0..iters {
            self.grover_iteration();
        }
    }

    /// One per-block Grover iteration (oracle flip, then per-block
    /// inversion). One query.
    pub fn block_grover_iteration(&mut self) {
        self.oracle_flip();
        self.invert_about_mean_per_block();
    }

    /// `iters` per-block Grover iterations (closed form on the symmetric
    /// rung, stepping otherwise).
    pub fn block_grover_iterations(&mut self, iters: u64) {
        if iters == 0 {
            return;
        }
        if let Repr::Symmetric(r) = &mut self.repr {
            r.block_grover_iterations(iters);
            self.queries += iters;
            return;
        }
        for _ in 0..iters {
            self.block_grover_iteration();
        }
    }

    // ------------------------------------------------------------------
    // Noise channels
    // ------------------------------------------------------------------

    /// Applies one drawn query's channel events in the dense kernels'
    /// order: depolarizing collapse first, then the dephasing kick.  (The
    /// fault decision is the caller's to honour at oracle-call time, via
    /// [`SparseState::charge_queries`].)
    pub fn apply_channels(&mut self, noise: &QueryNoise) {
        if let Some(x) = noise.depolarize {
            self.collapse_to_basis(x);
        }
        if let Some((bit, theta)) = noise.dephase {
            self.phase_kick(bit, theta);
        }
    }

    /// Collapse to the basis state `|x⟩`.  A collapse onto the target
    /// climbs all the way back to the symmetric rung (the subsequent
    /// dynamics are again closed-form); any other address rebuilds the
    /// canonical class partition with `x` pinned — at most `K + 2` entries,
    /// whatever the class count was before.
    pub fn collapse_to_basis(&mut self, x: u64) {
        assert!(x < self.n, "collapse target out of range");
        if x == self.target {
            self.repr = Repr::Symmetric(ReducedState::from_amplitudes(
                self.n as f64,
                self.k as f64,
                1.0,
                0.0,
                0.0,
            ));
            return;
        }
        let mut classes = Vec::with_capacity(self.k as usize);
        let pinned = [self.target, x];
        for block in 0..self.k {
            let in_block = pinned.iter().filter(|&&p| p / self.bsize == block).count() as u64;
            let pop = self.bsize - in_block;
            if pop > 0 {
                classes.push(SliceClass {
                    block,
                    mask: 0,
                    bits: 0,
                    pop,
                    value: Complex64::ZERO,
                });
            }
        }
        self.repr = Repr::Classes(ClassState {
            target_value: Complex64::ZERO,
            singled: Some(Pinned {
                addr: x,
                value: Complex64::ONE,
            }),
            classes,
        });
    }

    /// The dephasing kick: multiply every amplitude whose address has
    /// `bit` set by `e^{iθ}`.  Classes whose slice does not determine the
    /// bit are split in two with exactly recounted populations; if the
    /// split would exceed the class budget the state degrades to the basis
    /// map (see module docs).
    pub fn phase_kick(&mut self, bit: u32, theta: f64) {
        self.materialize_classes();
        let rot = Complex64::new(theta.cos(), theta.sin());
        let bitmask = 1u64 << bit;
        match &mut self.repr {
            Repr::Symmetric(_) => unreachable!("materialized above"),
            Repr::Map(map) => {
                for (x, v) in map.iter_mut() {
                    if x & bitmask != 0 {
                        *v *= rot;
                    }
                }
                return;
            }
            Repr::Classes(cs) => {
                if self.target & bitmask != 0 {
                    cs.target_value *= rot;
                }
                if let Some(p) = cs.singled.as_mut().filter(|p| p.addr & bitmask != 0) {
                    p.value *= rot;
                }
                let mut pinned: Vec<u64> = vec![self.target];
                if let Some(p) = &cs.singled {
                    pinned.push(p.addr);
                }
                let mut out: Vec<SliceClass> = Vec::with_capacity(cs.classes.len() + 8);
                let mut splits = 0u64;
                for c in &cs.classes {
                    if c.mask & bitmask != 0 {
                        // The slice already determines the kicked bit.
                        let value = if c.bits & bitmask != 0 {
                            c.value * rot
                        } else {
                            c.value
                        };
                        out.push(SliceClass { value, ..*c });
                        continue;
                    }
                    let lo = c.block * self.bsize;
                    let hi = lo + self.bsize;
                    let set_mask = c.mask | bitmask;
                    let set_bits = c.bits | bitmask;
                    let mut pop_set = count_in_range(lo, hi, set_mask, set_bits);
                    pop_set -= pinned
                        .iter()
                        .filter(|&&p| (lo..hi).contains(&p) && p & set_mask == set_bits)
                        .count() as u64;
                    let pop_clear = c.pop - pop_set;
                    if pop_set == 0 {
                        // Whole class has the bit clear; no mask growth.
                        out.push(*c);
                    } else if pop_clear == 0 {
                        out.push(SliceClass {
                            value: c.value * rot,
                            ..*c
                        });
                    } else {
                        splits += 1;
                        out.push(SliceClass {
                            block: c.block,
                            mask: set_mask,
                            bits: c.bits,
                            pop: pop_clear,
                            value: c.value,
                        });
                        out.push(SliceClass {
                            block: c.block,
                            mask: set_mask,
                            bits: set_bits,
                            pop: pop_set,
                            value: c.value * rot,
                        });
                    }
                }
                self.split_events += splits;
                Self::canonicalize(&mut out, &mut cs.singled, self.bsize);
                cs.classes = out;
            }
        }
        // Budget check happens outside the match (borrow of `repr` ends).
        if self.class_count() > self.max_classes {
            self.degrade_to_map();
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The fixed-order total amplitude sum of a class state.
    fn class_sum(cs: &ClassState) -> Complex64 {
        let mut sum = Complex64::ZERO;
        for c in &cs.classes {
            sum += c.value.scale(c.pop as f64);
        }
        sum += cs.target_value;
        if let Some(p) = &cs.singled {
            sum += p.value;
        }
        sum
    }

    /// Lowers the symmetric rung into explicit slice classes (identity on
    /// the other rungs).  Called before operators the symmetric form
    /// cannot express (phase kicks).
    fn materialize_classes(&mut self) {
        let Repr::Symmetric(r) = &self.repr else {
            return;
        };
        let target_value = Complex64::from_real(r.amp_target());
        let amp_tb = Complex64::from_real(r.amp_target_block());
        let amp_nb = Complex64::from_real(r.amp_nontarget());
        let mut classes = Vec::with_capacity(self.k as usize);
        for block in 0..self.k {
            let (pop, value) = if block == self.target_block {
                (self.bsize - 1, amp_tb)
            } else {
                (self.bsize, amp_nb)
            };
            if pop > 0 {
                classes.push(SliceClass {
                    block,
                    mask: 0,
                    bits: 0,
                    pop,
                    value,
                });
            }
        }
        self.repr = Repr::Classes(ClassState {
            target_value,
            singled: None,
            classes,
        });
        if self.class_count() > self.max_classes {
            self.degrade_to_map();
        }
    }

    /// Sorts classes into `(block, mask, bits)` order and merges structure
    /// back together: a block whose classes all carry the bit-identical
    /// value collapses to one unmasked class, and the pinned survivor is
    /// absorbed into its block when its value matches.  This keeps repeated
    /// kick/diffusion rounds from leaking classes that have re-converged.
    fn canonicalize(classes: &mut Vec<SliceClass>, singled: &mut Option<Pinned>, bsize: u64) {
        classes.sort_by_key(|c| (c.block, c.mask, c.bits));
        let mut merged: Vec<SliceClass> = Vec::with_capacity(classes.len());
        let same_value = |a: Complex64, b: Complex64| {
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
        };
        let mut i = 0;
        while i < classes.len() {
            let mut j = i + 1;
            while j < classes.len() && classes[j].block == classes[i].block {
                j += 1;
            }
            let uniform = classes[i..j]
                .iter()
                .all(|c| same_value(c.value, classes[i].value));
            if uniform && j - i > 1 {
                merged.push(SliceClass {
                    block: classes[i].block,
                    mask: 0,
                    bits: 0,
                    pop: classes[i..j].iter().map(|c| c.pop).sum(),
                    value: classes[i].value,
                });
            } else {
                merged.extend_from_slice(&classes[i..j]);
            }
            i = j;
        }
        // Absorb the survivor when its block is back to a single unmasked
        // class with the identical value.
        if let Some(p) = singled.as_ref() {
            let block = p.addr / bsize;
            let sole_uniform_class = merged.iter().filter(|c| c.block == block).count() == 1
                && merged
                    .iter()
                    .any(|c| c.block == block && c.mask == 0 && same_value(c.value, p.value));
            if sole_uniform_class {
                if let Some(c) = merged.iter_mut().find(|c| c.block == block) {
                    c.pop += 1;
                }
                *singled = None;
            }
        }
        *classes = merged;
    }

    /// Falls to the basis-map rung.
    ///
    /// # Panics
    /// Panics when `n > `[`SPARSE_MAP_CEILING`] — the point where the
    /// sparse backend gives up.  The planner refuses to route such jobs
    /// here, so this fires only on direct misuse of the simulator.
    fn degrade_to_map(&mut self) {
        if matches!(self.repr, Repr::Map(_)) {
            return;
        }
        assert!(
            self.n <= SPARSE_MAP_CEILING,
            "sparse state exceeded its class budget ({} > {}) and n = {} is past the \
             basis-map ceiling of {} — this job is unservable on the sparse backend",
            self.class_count(),
            self.max_classes,
            self.n,
            SPARSE_MAP_CEILING,
        );
        let map: BTreeMap<u64, Complex64> = (0..self.n).map(|x| (x, self.amplitude(x))).collect();
        self.repr = Repr::Map(map);
        self.ever_degraded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::QueryNoise;
    use crate::oracle::{Database, Partition};
    use crate::statevector::StateVector;
    use psq_math::approx::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn count_brute(lo: u64, hi: u64, mask: u64, bits: u64) -> u64 {
        (lo..hi).filter(|x| x & mask == bits).count() as u64
    }

    #[test]
    fn count_in_range_matches_brute_force() {
        let cases = [
            (0u64, 64u64, 0u64, 0u64),
            (0, 64, 0b101, 0b001),
            (7, 51, 0b110, 0b010),
            (13, 14, 0b1, 0b1),
            (0, 1, 0b1, 0b0),
            (32, 96, 0b10100, 0b10000),
            (5, 5, 0b1, 0b1),
        ];
        for (lo, hi, mask, bits) in cases {
            assert_eq!(
                count_in_range(lo, hi, mask, bits),
                count_brute(lo, hi, mask, bits),
                "({lo}, {hi}, {mask:#b}, {bits:#b})"
            );
        }
        // Dense sweep over a small universe of (range, mask, bits) triples.
        for mask in 0..16u64 {
            for bits in 0..16u64 {
                if bits & !mask != 0 {
                    continue;
                }
                for lo in 0..20u64 {
                    for hi in lo..24u64 {
                        assert_eq!(
                            count_in_range(lo, hi, mask, bits),
                            count_brute(lo, hi, mask, bits)
                        );
                    }
                }
            }
        }
        // Top-bit edge cases (i == 63 shift paths).
        assert_eq!(count_below(u64::MAX, 0, 0), u64::MAX);
        assert_eq!(count_below(u64::MAX, 1 << 63, 1 << 63), (1 << 63) - 1);
        assert_eq!(count_in_range(0, 1 << 40, 1 << 39, 1 << 39), 1 << 39);
    }

    #[test]
    fn uniform_state_is_normalised_and_symmetric() {
        let s = SparseState::uniform(1 << 30, 64, 12345);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
        assert_eq!(s.class_count(), 3);
        assert_eq!(s.queries(), 0);
        assert!(!s.is_degraded());
        assert_eq!(s.target_block(), 12345 / (1u64 << 24));
    }

    #[test]
    fn ideal_evolution_is_bitwise_identical_to_reduced() {
        let (n, k) = (1u64 << 20, 16u64);
        let mut sparse = SparseState::uniform(n, k, 777);
        let mut reduced = ReducedState::uniform(n as f64, k as f64);
        sparse.grover_iterations(402);
        reduced.grover_iterations(402);
        sparse.block_grover_iterations(201);
        reduced.block_grover_iterations(201);
        sparse.invert_about_mean_excluding_target();
        reduced.diffusion_excluding_target();
        assert_eq!(
            sparse.block_probability(sparse.target_block()).to_bits(),
            reduced.target_block_probability().to_bits(),
            "symmetric-rung delegation must be bit-identical"
        );
        assert_eq!(sparse.queries(), reduced.queries());
        assert_eq!(sparse.class_count(), 3);
    }

    /// Runs the same operator sequence on a dense state vector and the
    /// sparse state, comparing every amplitude after each operation.
    fn assert_matches_dense(n: u64, k: u64, target: u64, ops: &[&str], tol: f64) {
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut dense = StateVector::uniform(n as usize);
        let mut sparse = SparseState::uniform(n, k, target);
        let mut rng = StdRng::seed_from_u64(9);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                "oracle" => {
                    dense.apply_oracle_phase_flip(&db);
                    sparse.oracle_flip();
                }
                "global" => {
                    dense.invert_about_mean();
                    sparse.invert_about_mean();
                }
                "block" => {
                    dense.invert_about_mean_per_block(&partition);
                    sparse.invert_about_mean_per_block();
                }
                "step3" => {
                    dense.invert_about_mean_excluding_target(&db);
                    sparse.invert_about_mean_excluding_target();
                }
                "collapse" => {
                    let x = rng.gen_range(0..n);
                    let noise = QueryNoise {
                        faulty: false,
                        depolarize: Some(x),
                        dephase: None,
                    };
                    crate::noise::apply_channels(&mut dense, &noise);
                    sparse.apply_channels(&noise);
                }
                "kick" => {
                    let bits = (64 - (n - 1).leading_zeros()).max(1);
                    let bit = rng.gen_range(0..bits);
                    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                    let noise = QueryNoise {
                        faulty: false,
                        depolarize: None,
                        dephase: Some((bit, theta)),
                    };
                    crate::noise::apply_channels(&mut dense, &noise);
                    sparse.apply_channels(&noise);
                }
                other => panic!("unknown op {other}"),
            }
            for x in 0..n {
                let d = dense.amplitude(x as usize);
                let s = sparse.amplitude(x);
                assert!(
                    (d.re - s.re).abs() <= tol && (d.im - s.im).abs() <= tol,
                    "step {step} ({op}): amplitude {x} diverged: dense {d:?} vs sparse {s:?}"
                );
            }
            assert_close(sparse.norm_sqr(), 1.0, 1e-9);
        }
    }

    #[test]
    fn class_dynamics_match_dense_statevector() {
        assert_matches_dense(
            48,
            4,
            29,
            &[
                "oracle", "global", "oracle", "global", "collapse", "oracle", "global", "oracle",
                "block", "step3",
            ],
            1e-12,
        );
    }

    #[test]
    fn phase_kicks_split_classes_and_match_dense() {
        let (n, k, target) = (64u64, 4u64, 37u64);
        assert_matches_dense(
            n,
            k,
            target,
            &[
                "oracle", "global", "kick", "oracle", "global", "kick", "kick", "oracle", "block",
                "step3", "kick", "oracle", "global",
            ],
            1e-12,
        );
        // And explicitly: a kick on an undetermined bit splits.
        let mut s = SparseState::uniform(n, k, target);
        s.grover_iteration();
        assert_eq!(s.split_events(), 0);
        s.phase_kick(1, 0.8);
        assert!(s.split_events() > 0, "kick on an in-block bit must split");
        assert!(s.class_count() <= s.max_classes());
        assert!(!s.is_degraded());
    }

    #[test]
    fn class_count_stays_bounded_and_collapse_resets_it() {
        let (n, k, target) = (256u64, 8u64, 100u64);
        let mut s = SparseState::uniform(n, k, target);
        s.grover_iteration();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..64 {
            let bit = rng.gen_range(0..8u32);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            s.phase_kick(bit, theta);
            // Populations are exact: every address is covered exactly once.
            assert!(s.class_count() <= n as usize + 2);
            assert_close(s.norm_sqr(), 1.0, 1e-9);
        }
        assert!(s.split_events() > 0);
        s.collapse_to_basis(3);
        assert!(s.class_count() <= k as usize + 2, "collapse resets classes");
        s.collapse_to_basis(target);
        assert_eq!(s.class_count(), 3, "collapse onto target re-symmetrizes");
        assert_close(s.target_probability(), 1.0, 1e-15);
        // Closed-form resumption from the collapsed state stays normalised.
        s.grover_iterations(5);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn degrades_to_map_under_budget_pressure_and_stays_exact() {
        let (n, k, target) = (64u64, 4u64, 9u64);
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut dense = StateVector::uniform(n as usize);
        let mut sparse = SparseState::uniform(n, k, target).with_max_classes(6);
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..12 {
            dense.grover_iteration(&db);
            sparse.grover_iteration();
            let bit = rng.gen_range(0..6u32);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let noise = QueryNoise {
                faulty: false,
                depolarize: None,
                dephase: Some((bit, theta)),
            };
            crate::noise::apply_channels(&mut dense, &noise);
            sparse.apply_channels(&noise);
            if i == 5 {
                // Mid-run per-block + step-3 exercises the map rung's
                // grouped sweeps too.
                dense.invert_about_mean_per_block(&partition);
                sparse.invert_about_mean_per_block();
                dense.invert_about_mean_excluding_target(&db);
                sparse.invert_about_mean_excluding_target();
            }
        }
        assert!(sparse.is_degraded(), "budget of 6 must force the map rung");
        assert!(sparse.ever_degraded());
        for x in 0..n {
            let d = dense.amplitude(x as usize);
            let s = sparse.amplitude(x);
            assert!((d.re - s.re).abs() <= 1e-12 && (d.im - s.im).abs() <= 1e-12);
        }
        // A collapse climbs back off the map rung.
        sparse.collapse_to_basis(5);
        assert!(!sparse.is_degraded());
        assert!(sparse.ever_degraded(), "the sticky flag remembers");
    }

    #[test]
    fn sampling_consumes_one_draw_and_walks_blocks_in_order() {
        let s = SparseState::uniform(64, 4, 3);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let block = s.sample_block(&mut a);
        let u: f64 = b.gen();
        assert!(block < 4);
        assert_eq!(block, (u * 4.0) as u64, "uniform state: quartile walk");
        // Both rngs are now in the same position.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "unservable on the sparse backend")]
    fn degrading_past_the_map_ceiling_gives_up_loudly() {
        let mut s = SparseState::uniform(SPARSE_MAP_CEILING * 2, 4, 1).with_max_classes(4);
        // One in-block kick needs > 4 classes, and n is past the ceiling.
        s.phase_kick(0, 1.0);
    }

    #[test]
    fn huge_n_ideal_schedule_runs_in_microseconds() {
        // The whole point: exact dynamics at N = 2^34 with K = 2^10.
        let n = 1u64 << 34;
        let mut s = SparseState::uniform(n, 1 << 10, 987_654_321);
        let iters = psq_math::angle::optimal_grover_iterations(n as f64);
        s.grover_iterations(iters);
        assert!(s.target_probability() > 1.0 - 1e-8);
        assert_eq!(s.queries(), iters);
    }
}
