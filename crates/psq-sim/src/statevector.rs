//! Full complex state-vector simulation.
//!
//! A [`StateVector`] holds one amplitude per database address and applies the
//! operators the paper uses as streaming kernels:
//!
//! * the oracle reflection `I_t = I − 2|t⟩⟨t|` (one query per application),
//! * the global diffusion `I_0 = 2|ψ0⟩⟨ψ0| − I`,
//! * the per-block diffusion `I_K ⊗ I_{0,[N/K]}` of Section 2.2,
//! * the Step-3 "inversion about the average of the non-target states"
//!   (an ancilla-controlled `I_0`, which costs one more query for the
//!   marking operation `M`).
//!
//! Kernels switch to the chunked parallel implementations from
//! `psq-parallel` once the vector is large enough for threading to pay off.
//! For databases too large to materialise (the asymptotic table entries) use
//! [`crate::reduced::ReducedState`], which evolves the same dynamics exactly
//! in a three-dimensional symmetric subspace.

use crate::oracle::{Database, Partition};
use psq_math::complex::Complex64;
use psq_math::vec_ops;
use psq_parallel::{par_chunks_mut, par_map_reduce};

/// Problem sizes below this threshold always use the serial kernels; the
/// constant matches `psq_parallel::DEFAULT_MIN_CHUNK` doubled so that tiny
/// states never pay scoped-thread overhead.
const PARALLEL_THRESHOLD: usize = 2 * psq_parallel::DEFAULT_MIN_CHUNK;

/// A pure quantum state over the database address register.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The uniform superposition `|ψ0⟩ = (1/√N) Σ_x |x⟩` over `n` addresses.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "state vector needs at least one basis state");
        let amp = Complex64::from_real(1.0 / (n as f64).sqrt());
        Self { amps: vec![amp; n] }
    }

    /// The computational basis state `|index⟩`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(
            index < n,
            "basis index {index} out of range for dimension {n}"
        );
        let mut amps = vec![Complex64::ZERO; n];
        amps[index] = Complex64::ONE;
        Self { amps }
    }

    /// Builds a state from explicit amplitudes (normalised by the caller).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(
            !amps.is_empty(),
            "state vector needs at least one basis state"
        );
        Self { amps }
    }

    /// Builds a state from real amplitudes.
    pub fn from_real_amplitudes(reals: &[f64]) -> Self {
        Self::from_amplitudes(reals.iter().map(|&x| Complex64::from_real(x)).collect())
    }

    /// Dimension `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always `false`: a state vector has at least one amplitude.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable view of the amplitudes, for in-place kernels.
    ///
    /// This is what keeps the gate-level simulation allocation-free: circuit
    /// operators (`psq_sim::gates`) update amplitudes through this view
    /// instead of copying the vector per gate. Callers are responsible for
    /// preserving normalisation.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Resets the state to the uniform superposition in place, reusing the
    /// existing allocation (the steady-state reset between engine trials).
    pub fn fill_uniform(&mut self) {
        let amp = Complex64::from_real(1.0 / (self.amps.len() as f64).sqrt());
        self.amps.fill(amp);
    }

    /// The amplitude of basis state `i`.
    #[inline]
    pub fn amplitude(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    /// Squared norm (total probability).
    pub fn norm_sqr(&self) -> f64 {
        if self.len() >= PARALLEL_THRESHOLD {
            par_map_reduce(
                &self.amps,
                0.0f64,
                |_, chunk| chunk.iter().map(|z| z.norm_sqr()).sum::<f64>(),
                |a, b| a + b,
            )
        } else {
            vec_ops::norm_sqr(&self.amps)
        }
    }

    /// Whether the total probability is within `tol` of 1.
    pub fn is_normalized(&self, tol: f64) -> bool {
        (self.norm_sqr() - 1.0).abs() <= tol
    }

    /// Renormalises to unit norm; returns the previous norm.
    pub fn normalize(&mut self) -> f64 {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot normalise the zero state");
        let inv = 1.0 / norm;
        self.for_each_amplitude(|_, z| *z = z.scale(inv));
        norm
    }

    /// Measurement probability of basis state `i`.
    #[inline]
    pub fn probability(&self, i: usize) -> f64 {
        self.amps[i].norm_sqr()
    }

    /// Probability that a measurement lands in the half-open address range.
    pub fn probability_of_range(&self, range: std::ops::Range<usize>) -> f64 {
        vec_ops::probability_of_range(&self.amps, range)
    }

    /// Probability that a measurement lands in `block` of the partition.
    pub fn block_probability(&self, partition: &Partition, block: u64) -> f64 {
        assert_eq!(
            partition.size() as usize,
            self.len(),
            "partition size must match state dimension"
        );
        let r = partition.block_range(block);
        self.probability_of_range(r.start as usize..r.end as usize)
    }

    /// Per-block measurement probabilities.
    pub fn block_distribution(&self, partition: &Partition) -> Vec<f64> {
        partition
            .block_indices()
            .map(|b| self.block_probability(partition, b))
            .collect()
    }

    /// Largest imaginary component in the state (the partial-search dynamics
    /// keep this at round-off level; tests assert it).
    pub fn max_imaginary_part(&self) -> f64 {
        vec_ops::max_imaginary_part(&self.amps)
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        vec_ops::inner_product(&self.amps, &other.amps)
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Applies `f(index, &mut amplitude)` to every amplitude, in parallel for
    /// large states.
    pub fn for_each_amplitude<F>(&mut self, f: F)
    where
        F: Fn(usize, &mut Complex64) + Sync,
    {
        if self.len() >= PARALLEL_THRESHOLD {
            par_chunks_mut(&mut self.amps, |offset, chunk| {
                for (i, z) in chunk.iter_mut().enumerate() {
                    f(offset + i, z);
                }
            });
        } else {
            for (i, z) in self.amps.iter_mut().enumerate() {
                f(i, z);
            }
        }
    }

    // ------------------------------------------------------------------
    // Oracle reflections (each charges queries to the database)
    // ------------------------------------------------------------------

    /// Applies the selective phase inversion `I_t = I − 2|t⟩⟨t|`,
    /// charging one oracle query.
    ///
    /// This is the standard implementation of the oracle call inside
    /// amplitude amplification: the `T_f` bit-flip oracle applied to an
    /// ancilla prepared in `|−⟩` acts as a phase flip on the marked address.
    pub fn apply_oracle_phase_flip(&mut self, db: &Database) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        db.charge_quantum_queries(1);
        let t = db.target() as usize;
        self.amps[t] = -self.amps[t];
    }

    /// Applies the phase flip at an explicit index **without** charging a
    /// query.  Only for constructing reference states in tests and in the
    /// lower-bound hybrid argument (where the "oracle replaced by identity"
    /// runs need controllable substitutes).
    pub fn phase_flip_unchecked(&mut self, index: usize) {
        self.amps[index] = -self.amps[index];
    }

    /// Generalised oracle phase rotation `R_t(φ) = I + (e^{iφ} − 1)|t⟩⟨t|`,
    /// charging one query.
    ///
    /// `φ = π` recovers the standard phase flip `I_t`.  The sure-success
    /// Grover variant of Long (Phys. Rev. A 64, 022307) replaces the `π`
    /// phase with a matched angle `φ < π` so that the final rotation lands
    /// exactly on the target; `psq-grover::exact` drives this operator.
    pub fn apply_oracle_phase_rotation(&mut self, db: &Database, phi: f64) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        db.charge_quantum_queries(1);
        let t = db.target() as usize;
        self.amps[t] *= Complex64::cis(phi);
    }

    /// Generalised diffusion `D(φ) = I + (e^{iφ} − 1)|ψ0⟩⟨ψ0|`, the phase
    /// rotation about the uniform superposition.
    ///
    /// `φ = π` gives `I − 2|ψ0⟩⟨ψ0| = −I_0`, the standard inversion about
    /// the mean up to an unobservable global sign.
    pub fn invert_about_mean_with_phase(&mut self, phi: f64) {
        let n = self.len() as f64;
        // ⟨ψ0|ψ⟩ = (Σ_x a_x) / √N, and the update adds
        // (e^{iφ} − 1)·⟨ψ0|ψ⟩·(1/√N) to every amplitude.
        let overlap = self.amplitude_sum() / n.sqrt();
        let delta = (Complex64::cis(phi) - Complex64::ONE) * overlap / n.sqrt();
        self.for_each_amplitude(|_, z| *z += delta);
    }

    // ------------------------------------------------------------------
    // Diffusion operators
    // ------------------------------------------------------------------

    /// The global diffusion `I_0 = 2|ψ0⟩⟨ψ0| − I`: inversion about the mean
    /// amplitude of the whole register.
    pub fn invert_about_mean(&mut self) {
        let n = self.len();
        let mean = self.amplitude_sum() / n as f64;
        let twice = mean * 2.0;
        self.for_each_amplitude(|_, z| *z = twice - *z);
    }

    /// The per-block diffusion `I_{[K]} ⊗ I_{0,[N/K]}`: inversion about the
    /// mean within each block of the partition, applied to every block in
    /// parallel (Section 2.2).
    pub fn invert_about_mean_per_block(&mut self, partition: &Partition) {
        assert_eq!(
            partition.size() as usize,
            self.len(),
            "partition size must match state dimension"
        );
        let block_size = partition.block_size() as usize;
        if self.len() >= PARALLEL_THRESHOLD && block_size >= 2 {
            // Chunk boundaries are forced onto block boundaries so every
            // block's inversion sees exactly its own amplitudes.
            psq_parallel::par_chunks_aligned_mut(
                &mut self.amps,
                block_size,
                psq_parallel::DEFAULT_MIN_CHUNK,
                |_, chunk| {
                    for block_chunk in chunk.chunks_mut(block_size) {
                        vec_ops::invert_about_average(block_chunk);
                    }
                },
            );
        } else {
            for block_chunk in self.amps.chunks_mut(block_size) {
                vec_ops::invert_about_average(block_chunk);
            }
        }
    }

    /// Step 3 of the partial-search algorithm: the reflection about the
    /// uniform superposition of the **non-target** states
    /// (`2|u_nt⟩⟨u_nt| − I` on the non-target subspace, identity on `|t⟩`),
    /// i.e. an inversion about the average of the `N − 1` non-target
    /// amplitudes with the target amplitude left untouched.
    ///
    /// The paper implements this step by flipping an ancilla on the target
    /// (operation `M`, one oracle query) and applying `I_0` controlled on the
    /// ancilla being `|0⟩`, then measuring.  The two constructions agree on
    /// every non-target address up to `O(1/N)` (the ancilla circuit averages
    /// over `N` slots, one of which is empty; this reflection averages over
    /// the `N − 1` occupied ones) and distribute the remaining amplitude
    /// differently only *within* the target block, so the block-measurement
    /// statistics — the algorithm's output — are the same.  Charges one
    /// query, as in the paper.
    pub fn invert_about_mean_excluding_target(&mut self, db: &Database) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        // The marking operation M queries the oracle once.
        db.charge_quantum_queries(1);
        let t = db.target() as usize;
        let n = self.len() as f64;
        let mean = (self.amplitude_sum() - self.amps[t]) / (n - 1.0);
        let twice = mean * 2.0;
        self.for_each_amplitude(|i, z| {
            if i != t {
                *z = twice - *z;
            }
        });
    }

    /// One standard Grover iteration `A = I_0 · I_t` (Section 2.1): oracle
    /// phase flip followed by global inversion about the mean.  Charges one
    /// query.
    pub fn grover_iteration(&mut self, db: &Database) {
        self.apply_oracle_phase_flip(db);
        self.invert_about_mean();
    }

    /// One per-block iteration `A_{[N/K]} = (I_{[K]} ⊗ I_{0,[N/K]}) · I_t`
    /// (Section 2.2): oracle phase flip followed by inversion about the mean
    /// inside every block.  Charges one query.
    pub fn block_grover_iteration(&mut self, db: &Database, partition: &Partition) {
        self.apply_oracle_phase_flip(db);
        self.invert_about_mean_per_block(partition);
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Sum of all amplitudes (used by the diffusion kernels).
    pub fn amplitude_sum(&self) -> Complex64 {
        if self.len() >= PARALLEL_THRESHOLD {
            let (re, im) = par_map_reduce(
                &self.amps,
                (0.0f64, 0.0f64),
                |_, chunk| {
                    let s: Complex64 = chunk.iter().copied().sum();
                    (s.re, s.im)
                },
                |a, b| (a.0 + b.0, a.1 + b.1),
            );
            Complex64::new(re, im)
        } else {
            vec_ops::amplitude_sum(&self.amps)
        }
    }

    /// The index with the highest measurement probability.
    pub fn most_likely_index(&self) -> usize {
        vec_ops::argmax_probability(&self.amps)
    }

    /// Real parts of all amplitudes (for figure generation).
    pub fn real_amplitudes(&self) -> Vec<f64> {
        vec_ops::real_parts(&self.amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn uniform_state_is_normalised() {
        let psi = StateVector::uniform(12);
        assert!(psi.is_normalized(1e-12));
        assert_close(psi.amplitude(3).re, 1.0 / 12f64.sqrt(), 1e-12);
        assert_eq!(psi.len(), 12);
        assert!(!psi.is_empty());
    }

    #[test]
    fn basis_state_has_unit_probability_at_index() {
        let psi = StateVector::basis(8, 5);
        assert_close(psi.probability(5), 1.0, 1e-15);
        assert_close(psi.norm_sqr(), 1.0, 1e-15);
        assert_eq!(psi.most_likely_index(), 5);
    }

    #[test]
    fn oracle_flip_charges_one_query_and_flips_sign() {
        let db = Database::new(8, 3);
        let mut psi = StateVector::uniform(8);
        let before = psi.amplitude(3);
        psi.apply_oracle_phase_flip(&db);
        assert_eq!(db.queries(), 1);
        assert!((psi.amplitude(3) + before).abs() < 1e-15);
        // Other amplitudes untouched.
        assert!((psi.amplitude(0) - before).abs() < 1e-15);
    }

    #[test]
    fn grover_iteration_on_n4_finds_target_exactly() {
        let db = Database::new(4, 2);
        let mut psi = StateVector::uniform(4);
        psi.grover_iteration(&db);
        assert_close(psi.probability(2), 1.0, 1e-12);
        assert_eq!(db.queries(), 1);
    }

    #[test]
    fn grover_success_probability_matches_theory() {
        let n = 256;
        let db = Database::new(n as u64, 17);
        let mut psi = StateVector::uniform(n);
        let iters = psq_math::angle::optimal_grover_iterations(n as f64);
        for _ in 0..iters {
            psi.grover_iteration(&db);
        }
        let predicted = psq_math::angle::grover_success_probability(n as f64, iters);
        assert_close(psi.probability(17), predicted, 1e-9);
        assert_eq!(db.queries(), iters);
        assert!(psi.probability(17) > 0.999);
    }

    #[test]
    fn per_block_inversion_acts_blockwise() {
        // Non-target blocks (uniform within block) are fixed points;
        // a block with asymmetric amplitudes changes.
        let partition = Partition::new(8, 2);
        let mut psi = StateVector::from_real_amplitudes(&[
            0.5, 0.5, 0.5, 0.5, // block 0: uniform
            0.7, 0.1, 0.1, 0.1, // block 1: skewed
        ]);
        psi.normalize();
        let before = psi.clone();
        psi.invert_about_mean_per_block(&partition);
        for i in 0..4 {
            assert!((psi.amplitude(i) - before.amplitude(i)).abs() < 1e-12);
        }
        assert!((psi.amplitude(4) - before.amplitude(4)).abs() > 1e-3);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn per_block_inversion_preserves_block_probabilities() {
        let partition = Partition::new(12, 3);
        let db = Database::new(12, 6);
        let mut psi = StateVector::uniform(12);
        psi.apply_oracle_phase_flip(&db);
        let before = psi.block_distribution(&partition);
        psi.invert_about_mean_per_block(&partition);
        let after = psi.block_distribution(&partition);
        // Block-local unitaries cannot move probability between blocks.
        for (a, b) in before.iter().zip(after.iter()) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn excluding_target_inversion_charges_a_query_and_fixes_target() {
        let db = Database::new(12, 7);
        let mut psi = StateVector::uniform(12);
        let target_before = psi.amplitude(7);
        psi.invert_about_mean_excluding_target(&db);
        assert_eq!(db.queries(), 1);
        assert!((psi.amplitude(7) - target_before).abs() < 1e-15);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn block_distribution_sums_to_one() {
        let partition = Partition::new(16, 4);
        let db = Database::new(16, 9);
        let mut psi = StateVector::uniform(16);
        psi.grover_iteration(&db);
        psi.block_grover_iteration(&db, &partition);
        let dist = psi.block_distribution(&partition);
        assert_close(dist.iter().sum::<f64>(), 1.0, 1e-12);
        assert_eq!(db.queries(), 2);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::basis(4, 0);
        let b = StateVector::basis(4, 1);
        assert_close(a.fidelity(&b), 0.0, 1e-15);
        assert_close(a.fidelity(&a), 1.0, 1e-15);
        let u = StateVector::uniform(4);
        assert_close(u.fidelity(&a), 0.25, 1e-12);
    }

    #[test]
    fn parallel_threshold_path_matches_serial_path() {
        // A state big enough to trigger the parallel kernels must produce the
        // same dynamics as a small-state serial reference computed blockwise.
        let n = PARALLEL_THRESHOLD * 2;
        let db = Database::new(n as u64, 123);
        let mut psi = StateVector::uniform(n);
        psi.grover_iteration(&db);
        // After one iteration the target amplitude is (3N-4)/(N√N) exactly.
        let nf = n as f64;
        let expected_target = (3.0 * nf - 4.0) / (nf * nf.sqrt());
        assert_close(psi.amplitude(123).re, expected_target, 1e-12);
        assert_close(psi.norm_sqr(), 1.0, 1e-9);
        assert!(psi.max_imaginary_part() < 1e-15);
    }

    #[test]
    fn dynamics_stay_real() {
        let db = Database::new(64, 10);
        let partition = Partition::new(64, 8);
        let mut psi = StateVector::uniform(64);
        for _ in 0..5 {
            psi.grover_iteration(&db);
            psi.block_grover_iteration(&db, &partition);
        }
        assert!(psi.max_imaginary_part() < 1e-12);
        assert_close(psi.norm_sqr(), 1.0, 1e-10);
    }

    #[test]
    #[should_panic(expected = "must match state dimension")]
    fn mismatched_database_is_rejected() {
        let db = Database::new(16, 3);
        let mut psi = StateVector::uniform(8);
        psi.apply_oracle_phase_flip(&db);
    }

    #[test]
    fn phase_rotation_at_pi_equals_phase_flip() {
        let db = Database::new(32, 11);
        let mut a = StateVector::uniform(32);
        let mut b = StateVector::uniform(32);
        a.grover_iteration(&db);
        b.grover_iteration(&db);
        a.apply_oracle_phase_flip(&db);
        b.apply_oracle_phase_rotation(&db, std::f64::consts::PI);
        for i in 0..32 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs() < 1e-12);
        }
        assert_eq!(db.queries(), 4);
    }

    #[test]
    fn phase_diffusion_at_pi_equals_inversion_about_mean_up_to_global_sign() {
        // D(π) = I − 2|ψ0⟩⟨ψ0| = −I_0: the two kernels agree up to a global
        // phase of −1, which is unobservable.
        let db = Database::new(32, 5);
        let mut a = StateVector::uniform(32);
        let mut b = StateVector::uniform(32);
        a.apply_oracle_phase_flip(&db);
        b.apply_oracle_phase_flip(&db);
        a.invert_about_mean();
        b.invert_about_mean_with_phase(std::f64::consts::PI);
        for i in 0..32 {
            assert!((a.amplitude(i) + b.amplitude(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_operators_are_unitary() {
        let db = Database::new(16, 9);
        let mut psi = StateVector::uniform(16);
        psi.apply_oracle_phase_rotation(&db, 1.1);
        psi.invert_about_mean_with_phase(0.7);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
        // A non-π phase leaves the state genuinely complex.
        assert!(psi.max_imaginary_part() > 1e-3);
    }
}
