//! Full complex state-vector simulation on structure-of-arrays planes.
//!
//! A [`StateVector`] holds one amplitude per database address, stored as two
//! separate `f64` planes (real and imaginary — [`psq_math::soa::SoaVec`]),
//! and applies the operators the paper uses as streaming kernels:
//!
//! * the oracle reflection `I_t = I − 2|t⟩⟨t|` (one query per application),
//! * the global diffusion `I_0 = 2|ψ0⟩⟨ψ0| − I`,
//! * the per-block diffusion `I_K ⊗ I_{0,[N/K]}` of Section 2.2,
//! * the Step-3 "inversion about the average of the non-target states"
//!   (an ancilla-controlled `I_0`, which costs one more query for the
//!   marking operation `M`).
//!
//! Every one of those operators has **real** coefficients, so the two planes
//! evolve independently; when the state is known to be real (tracked by a
//! conservative `real_only` flag — the partial-search dynamics never leave
//! the real subspace) the imaginary plane is skipped entirely. On top of the
//! layout, the bulk runners [`StateVector::grover_iterations`] and
//! [`StateVector::block_grover_iterations`] **fuse** each iteration's oracle
//! flip and inversion about the mean into a single sweep per plane: the
//! sweep applies `x ← 2·mean − x` while accumulating the (block) sums the
//! *next* iteration's mean needs, so `ℓ` iterations cost `ℓ + 1` passes
//! instead of `2ℓ`. The single-iteration methods remain as the unfused
//! reference path; property tests pin the two within `1e-12`.
//!
//! Kernels switch to deterministic fixed-chunk parallel dispatch
//! (`psq_parallel::par_chunks_fixed`) once the vector is large enough for
//! threading to pay off; the chunk layout depends only on the problem size,
//! so results are bit-identical across thread counts. For databases too
//! large to materialise use [`crate::reduced::ReducedState`], which evolves
//! the same dynamics exactly in a three-dimensional symmetric subspace.

use crate::oracle::{Database, Partition};
use psq_math::complex::Complex64;
use psq_math::soa::{self, SoaVec};
use psq_parallel::{par_chunks_fixed, par_map_chunks_fixed, par_zip_chunks_fixed, FIXED_CHUNK};

/// Problem sizes below this threshold always use the serial kernels: one
/// fixed-layout chunk per plane is not worth a thread round-trip.
const PARALLEL_THRESHOLD: usize = 2 * FIXED_CHUNK;

/// A pure quantum state over the database address register.
#[derive(Clone, Debug)]
pub struct StateVector {
    planes: SoaVec,
    /// `true` only when the imaginary plane is **known** to be identically
    /// zero (and it then really is all zeros in memory); `false` means
    /// unknown. Real-coefficient kernels preserve the flag and skip the
    /// imaginary plane when it is set; anything that can introduce an
    /// imaginary component clears it.
    real_only: bool,
}

impl PartialEq for StateVector {
    fn eq(&self, other: &Self) -> bool {
        // The flag is a conservative optimisation hint, not state.
        self.planes == other.planes
    }
}

impl StateVector {
    /// The uniform superposition `|ψ0⟩ = (1/√N) Σ_x |x⟩` over `n` addresses.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "state vector needs at least one basis state");
        let amp = 1.0 / (n as f64).sqrt();
        Self {
            planes: SoaVec {
                re: vec![amp; n],
                im: vec![0.0; n],
            },
            real_only: true,
        }
    }

    /// The uniform superposition over `n` addresses, built inside a
    /// recycled [`AmplitudeScratch`] buffer instead of a fresh allocation.
    ///
    /// This is the constructor for callers that materialise many states of
    /// varying dimension in sequence — the recursive full-address runner
    /// builds one state per level, each `K` times smaller than the last, so
    /// after the top level every take fits the recycled allocation and the
    /// whole descent performs O(1) allocations. Pair with
    /// [`StateVector::recycle_into`] when the state is no longer needed.
    ///
    /// [`AmplitudeScratch`]: crate::scratch::AmplitudeScratch
    pub fn uniform_in(n: usize, scratch: &mut crate::scratch::AmplitudeScratch) -> Self {
        assert!(n > 0, "state vector needs at least one basis state");
        let amp = 1.0 / (n as f64).sqrt();
        let mut planes = scratch.take_raw();
        planes.re.clear();
        planes.re.resize(n, amp);
        planes.im.clear();
        planes.im.resize(n, 0.0);
        Self {
            planes,
            real_only: true,
        }
    }

    /// Hands this state's plane buffers back to a scratch for reuse (the
    /// counterpart of [`StateVector::uniform_in`]).
    pub fn recycle_into(self, scratch: &mut crate::scratch::AmplitudeScratch) {
        scratch.recycle(self.planes);
    }

    /// The computational basis state `|index⟩`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(
            index < n,
            "basis index {index} out of range for dimension {n}"
        );
        let mut planes = SoaVec::zeros(n);
        planes.re[index] = 1.0;
        Self {
            planes,
            real_only: true,
        }
    }

    /// Builds a state from explicit amplitudes (normalised by the caller).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(
            !amps.is_empty(),
            "state vector needs at least one basis state"
        );
        let planes = SoaVec::from_complex(&amps);
        let real_only = planes.im.iter().all(|&x| x == 0.0);
        Self { planes, real_only }
    }

    /// Builds a state from real amplitudes.
    pub fn from_real_amplitudes(reals: &[f64]) -> Self {
        assert!(
            !reals.is_empty(),
            "state vector needs at least one basis state"
        );
        Self {
            planes: SoaVec {
                re: reals.to_vec(),
                im: vec![0.0; reals.len()],
            },
            real_only: true,
        }
    }

    /// Dimension `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// Always `false`: a state vector has at least one amplitude.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The separate real and imaginary planes (the storage layout).
    #[inline]
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.planes.re, &self.planes.im)
    }

    /// Mutable access to both planes, for in-place kernels.
    ///
    /// Clears the known-real flag: the caller may write anything. Crate
    /// internals that provably preserve realness use the raw accessors and
    /// manage the flag themselves.
    #[inline]
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        self.real_only = false;
        (&mut self.planes.re, &mut self.planes.im)
    }

    /// Flag-preserving plane access for kernels in this crate that manage
    /// [`StateVector::real_only`] themselves.
    #[inline]
    pub(crate) fn planes_mut_raw(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.planes.re, &mut self.planes.im)
    }

    /// Whether the imaginary plane is known to be identically zero (the
    /// partial-search dynamics keep it so; kernels then touch half the
    /// memory).
    #[inline]
    pub fn is_real_only(&self) -> bool {
        self.real_only
    }

    #[inline]
    pub(crate) fn set_real_only(&mut self, flag: bool) {
        self.real_only = flag;
    }

    /// Materialises the array-of-structs amplitude vector (allocates; for
    /// interop and tests, not hot paths).
    pub fn to_amplitudes(&self) -> Vec<Complex64> {
        self.planes.to_complex()
    }

    /// Resets the state to the uniform superposition in place, reusing the
    /// existing allocations (the steady-state reset between engine trials).
    pub fn fill_uniform(&mut self) {
        let amp = 1.0 / (self.len() as f64).sqrt();
        self.planes.re.fill(amp);
        if !self.real_only {
            self.planes.im.fill(0.0);
            self.real_only = true;
        }
    }

    /// The amplitude of basis state `i`.
    #[inline]
    pub fn amplitude(&self, i: usize) -> Complex64 {
        self.planes.get(i)
    }

    /// Overwrites the amplitude of basis state `i`.
    #[inline]
    pub fn set_amplitude(&mut self, i: usize, z: Complex64) {
        self.planes.set(i, z);
        if z.im != 0.0 {
            self.real_only = false;
        }
    }

    /// Squared norm (total probability).
    pub fn norm_sqr(&self) -> f64 {
        let re = self.fold_plane_sum(&self.planes.re, soa::sum_sqr);
        if self.real_only {
            re
        } else {
            re + self.fold_plane_sum(&self.planes.im, soa::sum_sqr)
        }
    }

    /// Whether the total probability is within `tol` of 1.
    pub fn is_normalized(&self, tol: f64) -> bool {
        (self.norm_sqr() - 1.0).abs() <= tol
    }

    /// Renormalises to unit norm; returns the previous norm.
    pub fn normalize(&mut self) -> f64 {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot normalise the zero state");
        let inv = 1.0 / norm;
        soa::scale(&mut self.planes.re, inv);
        if !self.real_only {
            soa::scale(&mut self.planes.im, inv);
        }
        norm
    }

    /// Measurement probability of basis state `i`.
    #[inline]
    pub fn probability(&self, i: usize) -> f64 {
        if self.real_only {
            self.planes.re[i] * self.planes.re[i]
        } else {
            self.planes.norm_sqr_at(i)
        }
    }

    /// Probability that a measurement lands in the half-open address range.
    pub fn probability_of_range(&self, range: std::ops::Range<usize>) -> f64 {
        let re = soa::sum_sqr(&self.planes.re[range.clone()]);
        if self.real_only {
            re
        } else {
            re + soa::sum_sqr(&self.planes.im[range])
        }
    }

    /// Probability that a measurement lands in `block` of the partition.
    pub fn block_probability(&self, partition: &Partition, block: u64) -> f64 {
        assert_eq!(
            partition.size() as usize,
            self.len(),
            "partition size must match state dimension"
        );
        let r = partition.block_range(block);
        self.probability_of_range(r.start as usize..r.end as usize)
    }

    /// Per-block measurement probabilities.
    pub fn block_distribution(&self, partition: &Partition) -> Vec<f64> {
        partition
            .block_indices()
            .map(|b| self.block_probability(partition, b))
            .collect()
    }

    /// Largest imaginary component in the state (the partial-search dynamics
    /// keep this at exactly zero on the real-only fast path; tests assert
    /// it).
    pub fn max_imaginary_part(&self) -> f64 {
        if self.real_only {
            0.0
        } else {
            self.planes.im.iter().map(|x| x.abs()).fold(0.0, f64::max)
        }
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.len(), other.len(), "inner_product: dimension mismatch");
        soa::inner_product(
            &self.planes.re,
            &self.planes.im,
            &other.planes.re,
            &other.planes.im,
        )
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Angular distance `arccos |⟨self|other⟩|` (the Appendix-B metric the
    /// lower-bound audits integrate along hybrid paths).
    pub fn angular_distance(&self, other: &StateVector) -> f64 {
        psq_math::approx::safe_acos(self.inner_product(other).abs())
    }

    /// Applies `f(index, &mut amplitude)` to every amplitude, in parallel
    /// for large states (gather/scatter across the planes).
    ///
    /// The state stays flagged as real only if every written amplitude has a
    /// zero imaginary part.
    pub fn for_each_amplitude<F>(&mut self, f: F)
    where
        F: Fn(usize, &mut Complex64) + Sync,
    {
        let sweep = |offset: usize, re: &mut [f64], im: &mut [f64]| -> bool {
            let mut all_real = true;
            for i in 0..re.len() {
                let mut z = Complex64::new(re[i], im[i]);
                f(offset + i, &mut z);
                re[i] = z.re;
                im[i] = z.im;
                all_real &= z.im == 0.0;
            }
            all_real
        };
        let stayed_real = if self.len() >= PARALLEL_THRESHOLD {
            par_zip_chunks_fixed(&mut self.planes.re, &mut self.planes.im, FIXED_CHUNK, sweep)
                .into_iter()
                .all(|real| real)
        } else {
            sweep(0, &mut self.planes.re, &mut self.planes.im)
        };
        self.real_only = self.real_only && stayed_real;
    }

    // ------------------------------------------------------------------
    // Oracle reflections (each charges queries to the database)
    // ------------------------------------------------------------------

    /// Applies the selective phase inversion `I_t = I − 2|t⟩⟨t|`,
    /// charging one oracle query.
    ///
    /// This is the standard implementation of the oracle call inside
    /// amplitude amplification: the `T_f` bit-flip oracle applied to an
    /// ancilla prepared in `|−⟩` acts as a phase flip on the marked address.
    pub fn apply_oracle_phase_flip(&mut self, db: &Database) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        db.charge_quantum_queries(1);
        self.phase_flip_unchecked(db.target() as usize);
    }

    /// Applies the phase flip at an explicit index **without** charging a
    /// query.  Only for constructing reference states in tests and in the
    /// lower-bound hybrid argument (where the "oracle replaced by identity"
    /// runs need controllable substitutes).
    pub fn phase_flip_unchecked(&mut self, index: usize) {
        self.planes.re[index] = -self.planes.re[index];
        self.planes.im[index] = -self.planes.im[index];
    }

    /// Generalised oracle phase rotation `R_t(φ) = I + (e^{iφ} − 1)|t⟩⟨t|`,
    /// charging one query.
    ///
    /// `φ = π` recovers the standard phase flip `I_t`.  The sure-success
    /// Grover variant of Long (Phys. Rev. A 64, 022307) replaces the `π`
    /// phase with a matched angle `φ < π` so that the final rotation lands
    /// exactly on the target; `psq-grover::exact` drives this operator.
    pub fn apply_oracle_phase_rotation(&mut self, db: &Database, phi: f64) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        db.charge_quantum_queries(1);
        let t = db.target() as usize;
        let rotated = self.planes.get(t) * Complex64::cis(phi);
        self.set_amplitude(t, rotated);
    }

    /// Generalised diffusion `D(φ) = I + (e^{iφ} − 1)|ψ0⟩⟨ψ0|`, the phase
    /// rotation about the uniform superposition.
    ///
    /// `φ = π` gives `I − 2|ψ0⟩⟨ψ0| = −I_0`, the standard inversion about
    /// the mean up to an unobservable global sign.
    pub fn invert_about_mean_with_phase(&mut self, phi: f64) {
        let n = self.len() as f64;
        // ⟨ψ0|ψ⟩ = (Σ_x a_x) / √N, and the update adds
        // (e^{iφ} − 1)·⟨ψ0|ψ⟩·(1/√N) to every amplitude.
        let overlap = self.amplitude_sum() / n.sqrt();
        let delta = (Complex64::cis(phi) - Complex64::ONE) * overlap / n.sqrt();
        if delta.im != 0.0 {
            self.real_only = false;
        }
        self.plane_sweep(|plane, is_re| {
            let shift = if is_re { delta.re } else { delta.im };
            for x in plane.iter_mut() {
                *x += shift;
            }
        });
    }

    // ------------------------------------------------------------------
    // Diffusion operators
    // ------------------------------------------------------------------

    /// The global diffusion `I_0 = 2|ψ0⟩⟨ψ0| − I`: inversion about the mean
    /// amplitude of the whole register.
    ///
    /// This is the unfused reference form (one pass to sum, one to apply);
    /// iteration runs use the fused [`StateVector::grover_iterations`].
    pub fn invert_about_mean(&mut self) {
        let n = self.len() as f64;
        let skip_im = self.real_only;
        let parallel = self.len() >= PARALLEL_THRESHOLD;
        for (plane, active) in [(&mut self.planes.re, true), (&mut self.planes.im, !skip_im)] {
            if !active {
                continue;
            }
            let two_mean = if parallel {
                2.0 * par_map_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::sum(c))
                    .into_iter()
                    .sum::<f64>()
                    / n
            } else {
                2.0 * soa::sum(plane) / n
            };
            if parallel {
                par_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::invert_resum(c, two_mean));
            } else {
                soa::invert_resum(plane, two_mean);
            }
        }
    }

    /// The per-block diffusion `I_{[K]} ⊗ I_{0,[N/K]}`: inversion about the
    /// mean within each block of the partition, applied to every block in
    /// parallel (Section 2.2).  Unfused reference form; iteration runs use
    /// the fused [`StateVector::block_grover_iterations`].
    pub fn invert_about_mean_per_block(&mut self, partition: &Partition) {
        assert_eq!(
            partition.size() as usize,
            self.len(),
            "partition size must match state dimension"
        );
        let block = partition.block_size() as usize;
        let skip_im = self.real_only;
        let parallel = self.len() >= PARALLEL_THRESHOLD && block >= 2;
        // Chunk boundaries land on block boundaries so every block's
        // inversion sees exactly its own amplitudes.
        let chunk = FIXED_CHUNK.div_ceil(block) * block;
        for (plane, active) in [(&mut self.planes.re, true), (&mut self.planes.im, !skip_im)] {
            if !active {
                continue;
            }
            if parallel {
                par_chunks_fixed(plane, chunk, |_, c| {
                    for block_chunk in c.chunks_mut(block) {
                        soa::invert_about_average(block_chunk);
                    }
                });
            } else {
                for block_chunk in plane.chunks_mut(block) {
                    soa::invert_about_average(block_chunk);
                }
            }
        }
    }

    /// Step 3 of the partial-search algorithm: the reflection about the
    /// uniform superposition of the **non-target** states
    /// (`2|u_nt⟩⟨u_nt| − I` on the non-target subspace, identity on `|t⟩`),
    /// i.e. an inversion about the average of the `N − 1` non-target
    /// amplitudes with the target amplitude left untouched.
    ///
    /// The paper implements this step by flipping an ancilla on the target
    /// (operation `M`, one oracle query) and applying `I_0` controlled on the
    /// ancilla being `|0⟩`, then measuring.  The two constructions agree on
    /// every non-target address up to `O(1/N)` (the ancilla circuit averages
    /// over `N` slots, one of which is empty; this reflection averages over
    /// the `N − 1` occupied ones) and distribute the remaining amplitude
    /// differently only *within* the target block, so the block-measurement
    /// statistics — the algorithm's output — are the same.  Charges one
    /// query, as in the paper.
    pub fn invert_about_mean_excluding_target(&mut self, db: &Database) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        // The marking operation M queries the oracle once.
        db.charge_quantum_queries(1);
        let t = db.target() as usize;
        let n = self.len() as f64;
        let skip_im = self.real_only;
        let parallel = self.len() >= PARALLEL_THRESHOLD;
        for (plane, active) in [(&mut self.planes.re, true), (&mut self.planes.im, !skip_im)] {
            if !active {
                continue;
            }
            let target_amp = plane[t];
            let sum = if parallel {
                par_map_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::sum(c))
                    .into_iter()
                    .sum::<f64>()
            } else {
                soa::sum(plane)
            };
            let two_mean = 2.0 * (sum - target_amp) / (n - 1.0);
            // Sweep every element, then restore the untouched target —
            // cheaper than a branch per element.
            if parallel {
                par_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::invert_resum(c, two_mean));
            } else {
                soa::invert_resum(plane, two_mean);
            }
            plane[t] = target_amp;
        }
    }

    /// One standard Grover iteration `A = I_0 · I_t` (Section 2.1): oracle
    /// phase flip followed by global inversion about the mean.  Charges one
    /// query.  Unfused reference path; see
    /// [`StateVector::grover_iterations`] for iteration runs.
    pub fn grover_iteration(&mut self, db: &Database) {
        self.apply_oracle_phase_flip(db);
        self.invert_about_mean();
    }

    /// One per-block iteration `A_{[N/K]} = (I_{[K]} ⊗ I_{0,[N/K]}) · I_t`
    /// (Section 2.2): oracle phase flip followed by inversion about the mean
    /// inside every block.  Charges one query.  Unfused reference path; see
    /// [`StateVector::block_grover_iterations`].
    pub fn block_grover_iteration(&mut self, db: &Database, partition: &Partition) {
        self.apply_oracle_phase_flip(db);
        self.invert_about_mean_per_block(partition);
    }

    // ------------------------------------------------------------------
    // Fused iteration runs (the simulation hot path)
    // ------------------------------------------------------------------

    /// Runs `count` standard Grover iterations `(I_0 · I_t)^count`, charging
    /// `count` queries, with the oracle flip and the diffusion **fused into
    /// one sweep per plane per iteration**.
    ///
    /// The sweep applies `x ← 2·mean − x` while summing the values it
    /// writes; since the inversion preserves the plane sum exactly and the
    /// oracle flip changes it by the O(1) target delta, the next iteration's
    /// mean is ready without a separate pass.  Total cost: `count + 1`
    /// sweeps instead of `2·count`.  Matches the unfused reference within
    /// `1e-12` (property-tested).
    pub fn grover_iterations(&mut self, db: &Database, count: u64) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        if count == 0 {
            return;
        }
        db.charge_quantum_queries(count);
        let t = db.target() as usize;
        let n = self.len() as f64;
        let parallel = self.len() >= PARALLEL_THRESHOLD;
        self.plane_sweep(|plane, _| {
            let mut sum = if parallel {
                par_map_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::sum(c))
                    .into_iter()
                    .sum::<f64>()
            } else {
                soa::sum(plane)
            };
            for _ in 0..count {
                // Oracle flip: O(1) on the amplitude, O(1) on the sum.
                let flipped = -plane[t];
                plane[t] = flipped;
                sum += 2.0 * flipped;
                let two_mean = 2.0 * sum / n;
                sum = if parallel {
                    par_chunks_fixed(plane, FIXED_CHUNK, |_, c| soa::invert_resum(c, two_mean))
                        .into_iter()
                        .sum::<f64>()
                } else {
                    soa::invert_resum(plane, two_mean)
                };
            }
        });
    }

    /// Runs `count` per-block Grover iterations
    /// `((I_{[K]} ⊗ I_{0,[N/K]}) · I_t)^count`, charging `count` queries,
    /// with the oracle flip and the per-block diffusion fused into one sweep
    /// per plane per iteration (the sweep computes the next iteration's
    /// block sums while applying the current inversion).
    pub fn block_grover_iterations(&mut self, db: &Database, partition: &Partition, count: u64) {
        assert_eq!(
            db.size() as usize,
            self.len(),
            "database size must match state dimension"
        );
        assert_eq!(
            partition.size() as usize,
            self.len(),
            "partition size must match state dimension"
        );
        if count == 0 {
            return;
        }
        db.charge_quantum_queries(count);
        let t = db.target() as usize;
        let block = partition.block_size() as usize;
        let target_block = (t / block) * block; // start offset of t's block
        let blocks = self.len() / block;
        let parallel = self.len() >= PARALLEL_THRESHOLD && block >= 2;
        let chunk = FIXED_CHUNK.div_ceil(block) * block;
        self.plane_sweep(|plane, _| {
            let mut sums = vec![0.0f64; blocks];
            let mut next = vec![0.0f64; blocks];
            if parallel {
                let partials = par_map_chunks_fixed(plane, chunk, |offset, c| {
                    per_chunk_block_sums(c, block, offset)
                });
                splice_block_sums(&mut sums, partials);
            } else {
                soa::block_sums(plane, block, &mut sums);
            }
            for _ in 0..count {
                let flipped = -plane[t];
                plane[t] = flipped;
                sums[target_block / block] += 2.0 * flipped;
                if parallel {
                    let sums_ref = &sums;
                    let partials = par_chunks_fixed(plane, chunk, |offset, c| {
                        let first = offset / block;
                        let mut out = vec![0.0f64; c.len() / block];
                        soa::blocks_invert_resum(
                            c,
                            block,
                            &sums_ref[first..first + out.len()],
                            &mut out,
                        );
                        out
                    });
                    splice_block_sums(&mut next, partials);
                } else {
                    soa::blocks_invert_resum(plane, block, &sums, &mut next);
                }
                std::mem::swap(&mut sums, &mut next);
            }
        });
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /// Runs `f` over the real plane, and over the imaginary plane too unless
    /// the state is known to be real (the real-coefficient operators act on
    /// the planes independently).  `f` receives whether it is on the real
    /// plane.
    fn plane_sweep<F>(&mut self, f: F)
    where
        F: Fn(&mut [f64], bool),
    {
        f(&mut self.planes.re, true);
        if !self.real_only {
            f(&mut self.planes.im, false);
        }
    }

    /// Sum-style fold over one plane with the deterministic fixed-chunk
    /// layout for large states.
    fn fold_plane_sum(&self, plane: &[f64], map: fn(&[f64]) -> f64) -> f64 {
        if plane.len() >= PARALLEL_THRESHOLD {
            par_map_chunks_fixed(plane, FIXED_CHUNK, |_, c| map(c))
                .into_iter()
                .sum()
        } else {
            map(plane)
        }
    }

    /// Sum of all amplitudes (used by the diffusion kernels).
    pub fn amplitude_sum(&self) -> Complex64 {
        let re = self.fold_plane_sum(&self.planes.re, soa::sum);
        let im = if self.real_only {
            0.0
        } else {
            self.fold_plane_sum(&self.planes.im, soa::sum)
        };
        Complex64::new(re, im)
    }

    /// The index with the highest measurement probability.
    pub fn most_likely_index(&self) -> usize {
        let mut best = 0usize;
        let mut best_p = f64::NEG_INFINITY;
        for i in 0..self.len() {
            let p = self.probability(i);
            if p > best_p {
                best_p = p;
                best = i;
            }
        }
        best
    }

    /// Real parts of all amplitudes (for figure generation).
    pub fn real_amplitudes(&self) -> Vec<f64> {
        self.planes.re.clone()
    }
}

/// Per-block sums of one fixed chunk (whole blocks only; `offset` is the
/// chunk's start in the plane and must be block-aligned).
fn per_chunk_block_sums(chunk: &[f64], block: usize, offset: usize) -> Vec<f64> {
    debug_assert_eq!(offset % block, 0);
    let mut out = vec![0.0f64; chunk.len() / block];
    soa::block_sums(chunk, block, &mut out);
    out
}

/// Reassembles per-chunk block-sum vectors (in chunk order, from the fixed
/// layout) into the global block-sum array.
fn splice_block_sums(sums: &mut [f64], partials: Vec<Vec<f64>>) {
    let mut at = 0usize;
    for part in partials {
        sums[at..at + part.len()].copy_from_slice(&part);
        at += part.len();
    }
    debug_assert_eq!(at, sums.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn uniform_state_is_normalised() {
        let psi = StateVector::uniform(12);
        assert!(psi.is_normalized(1e-12));
        assert_close(psi.amplitude(3).re, 1.0 / 12f64.sqrt(), 1e-12);
        assert_eq!(psi.len(), 12);
        assert!(!psi.is_empty());
        assert!(psi.is_real_only());
    }

    #[test]
    fn basis_state_has_unit_probability_at_index() {
        let psi = StateVector::basis(8, 5);
        assert_close(psi.probability(5), 1.0, 1e-15);
        assert_close(psi.norm_sqr(), 1.0, 1e-15);
        assert_eq!(psi.most_likely_index(), 5);
    }

    #[test]
    fn oracle_flip_charges_one_query_and_flips_sign() {
        let db = Database::new(8, 3);
        let mut psi = StateVector::uniform(8);
        let before = psi.amplitude(3);
        psi.apply_oracle_phase_flip(&db);
        assert_eq!(db.queries(), 1);
        assert!((psi.amplitude(3) + before).abs() < 1e-15);
        // Other amplitudes untouched.
        assert!((psi.amplitude(0) - before).abs() < 1e-15);
    }

    #[test]
    fn grover_iteration_on_n4_finds_target_exactly() {
        let db = Database::new(4, 2);
        let mut psi = StateVector::uniform(4);
        psi.grover_iteration(&db);
        assert_close(psi.probability(2), 1.0, 1e-12);
        assert_eq!(db.queries(), 1);
    }

    #[test]
    fn grover_success_probability_matches_theory() {
        let n = 256;
        let db = Database::new(n as u64, 17);
        let mut psi = StateVector::uniform(n);
        let iters = psq_math::angle::optimal_grover_iterations(n as f64);
        for _ in 0..iters {
            psi.grover_iteration(&db);
        }
        let predicted = psq_math::angle::grover_success_probability(n as f64, iters);
        assert_close(psi.probability(17), predicted, 1e-9);
        assert_eq!(db.queries(), iters);
        assert!(psi.probability(17) > 0.999);
    }

    #[test]
    fn fused_grover_run_matches_stepped_iterations() {
        let n = 300; // deliberately not a power of two
        let db_fused = Database::new(n as u64, 123);
        let db_step = Database::new(n as u64, 123);
        let mut fused = StateVector::uniform(n);
        let mut stepped = StateVector::uniform(n);
        fused.grover_iterations(&db_fused, 9);
        for _ in 0..9 {
            stepped.grover_iteration(&db_step);
        }
        assert_eq!(db_fused.queries(), db_step.queries());
        for i in 0..n {
            assert!((fused.amplitude(i) - stepped.amplitude(i)).abs() < 1e-12);
        }
        assert!(fused.is_real_only());
    }

    #[test]
    fn fused_block_run_matches_stepped_iterations() {
        let n = 240u64;
        let k = 6u64;
        let db_fused = Database::new(n, 77);
        let db_step = Database::new(n, 77);
        let partition = Partition::new(n, k);
        let mut fused = StateVector::uniform(n as usize);
        let mut stepped = StateVector::uniform(n as usize);
        // Move off the uniform fixed point first.
        fused.grover_iterations(&db_fused, 2);
        for _ in 0..2 {
            stepped.grover_iteration(&db_step);
        }
        fused.block_grover_iterations(&db_fused, &partition, 7);
        for _ in 0..7 {
            stepped.block_grover_iteration(&db_step, &partition);
        }
        assert_eq!(db_fused.queries(), db_step.queries());
        for i in 0..n as usize {
            assert!((fused.amplitude(i) - stepped.amplitude(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_runs_of_zero_iterations_are_identity_and_free() {
        let db = Database::new(64, 5);
        let partition = Partition::new(64, 4);
        let mut psi = StateVector::uniform(64);
        let before = psi.clone();
        psi.grover_iterations(&db, 0);
        psi.block_grover_iterations(&db, &partition, 0);
        assert_eq!(psi, before);
        assert_eq!(db.queries(), 0);
    }

    #[test]
    fn per_block_inversion_acts_blockwise() {
        // Non-target blocks (uniform within block) are fixed points;
        // a block with asymmetric amplitudes changes.
        let partition = Partition::new(8, 2);
        let mut psi = StateVector::from_real_amplitudes(&[
            0.5, 0.5, 0.5, 0.5, // block 0: uniform
            0.7, 0.1, 0.1, 0.1, // block 1: skewed
        ]);
        psi.normalize();
        let before = psi.clone();
        psi.invert_about_mean_per_block(&partition);
        for i in 0..4 {
            assert!((psi.amplitude(i) - before.amplitude(i)).abs() < 1e-12);
        }
        assert!((psi.amplitude(4) - before.amplitude(4)).abs() > 1e-3);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn per_block_inversion_preserves_block_probabilities() {
        let partition = Partition::new(12, 3);
        let db = Database::new(12, 6);
        let mut psi = StateVector::uniform(12);
        psi.apply_oracle_phase_flip(&db);
        let before = psi.block_distribution(&partition);
        psi.invert_about_mean_per_block(&partition);
        let after = psi.block_distribution(&partition);
        // Block-local unitaries cannot move probability between blocks.
        for (a, b) in before.iter().zip(after.iter()) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn excluding_target_inversion_charges_a_query_and_fixes_target() {
        let db = Database::new(12, 7);
        let mut psi = StateVector::uniform(12);
        let target_before = psi.amplitude(7);
        psi.invert_about_mean_excluding_target(&db);
        assert_eq!(db.queries(), 1);
        assert!((psi.amplitude(7) - target_before).abs() < 1e-15);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn block_distribution_sums_to_one() {
        let partition = Partition::new(16, 4);
        let db = Database::new(16, 9);
        let mut psi = StateVector::uniform(16);
        psi.grover_iteration(&db);
        psi.block_grover_iteration(&db, &partition);
        let dist = psi.block_distribution(&partition);
        assert_close(dist.iter().sum::<f64>(), 1.0, 1e-12);
        assert_eq!(db.queries(), 2);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::basis(4, 0);
        let b = StateVector::basis(4, 1);
        assert_close(a.fidelity(&b), 0.0, 1e-15);
        assert_close(a.fidelity(&a), 1.0, 1e-15);
        let u = StateVector::uniform(4);
        assert_close(u.fidelity(&a), 0.25, 1e-12);
        assert_close(u.angular_distance(&u), 0.0, 1e-12);
        assert_close(a.angular_distance(&b), std::f64::consts::FRAC_PI_2, 1e-12);
    }

    #[test]
    fn parallel_threshold_path_matches_serial_path() {
        // A state big enough to trigger the parallel kernels must produce the
        // same dynamics as a small-state serial reference computed blockwise.
        let n = PARALLEL_THRESHOLD * 2;
        let db = Database::new(n as u64, 123);
        let mut psi = StateVector::uniform(n);
        psi.grover_iteration(&db);
        // After one iteration the target amplitude is (3N-4)/(N√N) exactly.
        let nf = n as f64;
        let expected_target = (3.0 * nf - 4.0) / (nf * nf.sqrt());
        assert_close(psi.amplitude(123).re, expected_target, 1e-12);
        assert_close(psi.norm_sqr(), 1.0, 1e-9);
        assert!(psi.max_imaginary_part() < 1e-15);
    }

    #[test]
    fn fused_parallel_run_matches_serial_chunk_fold() {
        // Above the parallel threshold the fused run still matches the
        // stepped reference (which itself uses the fixed-chunk folds).
        let n = PARALLEL_THRESHOLD + 1024; // ragged final chunk
        let db_fused = Database::new(n as u64, 60_000);
        let db_step = Database::new(n as u64, 60_000);
        let mut fused = StateVector::uniform(n);
        let mut stepped = StateVector::uniform(n);
        fused.grover_iterations(&db_fused, 3);
        for _ in 0..3 {
            stepped.grover_iteration(&db_step);
        }
        for i in (0..n).step_by(997) {
            assert!((fused.amplitude(i) - stepped.amplitude(i)).abs() < 1e-12);
        }
        assert_close(fused.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn dynamics_stay_real() {
        let db = Database::new(64, 10);
        let partition = Partition::new(64, 8);
        let mut psi = StateVector::uniform(64);
        for _ in 0..5 {
            psi.grover_iteration(&db);
            psi.block_grover_iteration(&db, &partition);
        }
        assert!(psi.is_real_only(), "reflections keep the state real");
        assert!(psi.max_imaginary_part() < 1e-12);
        assert_close(psi.norm_sqr(), 1.0, 1e-10);
    }

    #[test]
    fn real_only_flag_clears_on_complex_writes_and_planes_mut() {
        let mut psi = StateVector::uniform(8);
        psi.set_amplitude(2, Complex64::from_real(0.5));
        assert!(psi.is_real_only(), "real writes keep the flag");
        psi.set_amplitude(2, Complex64::new(0.0, 0.5));
        assert!(!psi.is_real_only());
        let mut psi = StateVector::uniform(8);
        let _ = psi.planes_mut();
        assert!(!psi.is_real_only(), "raw plane access is conservative");
        // The amplitudes are unchanged, so dynamics remain identical.
        let reference = StateVector::uniform(8);
        assert_eq!(psi, reference);
    }

    #[test]
    fn complex_states_run_both_planes_through_the_fused_kernels() {
        // A genuinely complex state: fused vs stepped must still agree on
        // both planes.
        let n = 96usize;
        let mut amps: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        psq_math::vec_ops::normalize(&mut amps);
        let db_fused = Database::new(n as u64, 31);
        let db_step = Database::new(n as u64, 31);
        let partition = Partition::new(n as u64, 4);
        let mut fused = StateVector::from_amplitudes(amps.clone());
        let mut stepped = StateVector::from_amplitudes(amps);
        assert!(!fused.is_real_only());
        fused.grover_iterations(&db_fused, 4);
        fused.block_grover_iterations(&db_fused, &partition, 3);
        for _ in 0..4 {
            stepped.grover_iteration(&db_step);
        }
        for _ in 0..3 {
            stepped.block_grover_iteration(&db_step, &partition);
        }
        for i in 0..n {
            assert!((fused.amplitude(i) - stepped.amplitude(i)).abs() < 1e-12);
        }
        assert!(fused.max_imaginary_part() > 1e-3, "state stayed complex");
    }

    #[test]
    #[should_panic(expected = "must match state dimension")]
    fn mismatched_database_is_rejected() {
        let db = Database::new(16, 3);
        let mut psi = StateVector::uniform(8);
        psi.apply_oracle_phase_flip(&db);
    }

    #[test]
    fn phase_rotation_at_pi_equals_phase_flip() {
        let db = Database::new(32, 11);
        let mut a = StateVector::uniform(32);
        let mut b = StateVector::uniform(32);
        a.grover_iteration(&db);
        b.grover_iteration(&db);
        a.apply_oracle_phase_flip(&db);
        b.apply_oracle_phase_rotation(&db, std::f64::consts::PI);
        for i in 0..32 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs() < 1e-12);
        }
        assert_eq!(db.queries(), 4);
    }

    #[test]
    fn phase_diffusion_at_pi_equals_inversion_about_mean_up_to_global_sign() {
        // D(π) = I − 2|ψ0⟩⟨ψ0| = −I_0: the two kernels agree up to a global
        // phase of −1, which is unobservable.
        let db = Database::new(32, 5);
        let mut a = StateVector::uniform(32);
        let mut b = StateVector::uniform(32);
        a.apply_oracle_phase_flip(&db);
        b.apply_oracle_phase_flip(&db);
        a.invert_about_mean();
        b.invert_about_mean_with_phase(std::f64::consts::PI);
        for i in 0..32 {
            assert!((a.amplitude(i) + b.amplitude(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_operators_are_unitary() {
        let db = Database::new(16, 9);
        let mut psi = StateVector::uniform(16);
        psi.apply_oracle_phase_rotation(&db, 1.1);
        psi.invert_about_mean_with_phase(0.7);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
        // A non-π phase leaves the state genuinely complex.
        assert!(psi.max_imaginary_part() > 1e-3);
        assert!(!psi.is_real_only());
    }

    #[test]
    fn amplitude_round_trip_through_planes() {
        let amps = vec![
            Complex64::new(0.5, 0.1),
            Complex64::new(-0.5, 0.0),
            Complex64::new(0.0, -0.7),
        ];
        let psi = StateVector::from_amplitudes(amps.clone());
        assert_eq!(psi.to_amplitudes(), amps);
        let (re, im) = psi.planes();
        assert_eq!(re, &[0.5, -0.5, 0.0]);
        assert_eq!(im, &[0.1, 0.0, -0.7]);
        assert_eq!(psi.real_amplitudes(), vec![0.5, -0.5, 0.0]);
    }
}
