//! Qubit-level gates and circuits.
//!
//! The streaming kernels in [`crate::statevector`] apply the Grover operators
//! directly as reflections, which is how the query-count analysis treats
//! them.  This module provides the circuit-level view used in Section 2.1 of
//! the paper (and in Nielsen & Chuang's presentation): an `n`-qubit register,
//! single-qubit gates, controlled phases, and the decomposition of the
//! diffusion operator as `H^{⊗n} · (2|0⟩⟨0| − I) · H^{⊗n}`.
//!
//! The Hadamard walls are the circuit backend's hot path, and they are
//! **not** applied as `n` sequential single-qubit butterfly sweeps any more:
//! [`QubitRegister::hadamard_all`] and
//! [`QubitRegister::hadamard_low_qubits`] route through the in-place radix-2
//! fast Walsh–Hadamard transform of [`psq_math::soa`], one pass with the
//! `1/√N` normalisation folded into its final butterfly level, applied per
//! amplitude plane (and to the real plane only while the state is known to
//! be real).  The per-gate path ([`QubitRegister::apply_single_qubit`]) is
//! kept for arbitrary 2×2 unitaries and as the reference the equivalence
//! tests pin the transform against.
//!
//! Tests verify that the circuit construction reproduces the reflection
//! kernels exactly, which is the correctness argument for charging one query
//! per oracle application in the kernel form.

use crate::statevector::StateVector;
use psq_math::complex::Complex64;
use psq_math::matrix::Matrix;
use psq_math::soa;

/// A register of `n` qubits whose joint state is a [`StateVector`] of
/// dimension `2^n`.
///
/// Qubit 0 is the **most significant** address bit, matching the paper's
/// convention that the first `k` bits of an address name its block.
#[derive(Clone, Debug)]
pub struct QubitRegister {
    qubits: u32,
    state: StateVector,
}

impl QubitRegister {
    /// Creates the register in the all-zeros state `|0…0⟩`.
    pub fn zeros(qubits: u32) -> Self {
        assert!(
            (1..=26).contains(&qubits),
            "supported register sizes are 1..=26 qubits"
        );
        Self {
            qubits,
            state: StateVector::basis(1usize << qubits, 0),
        }
    }

    /// Creates the register in the uniform superposition.
    pub fn uniform(qubits: u32) -> Self {
        assert!(
            (1..=26).contains(&qubits),
            "supported register sizes are 1..=26 qubits"
        );
        Self {
            qubits,
            state: StateVector::uniform(1usize << qubits),
        }
    }

    /// Wraps an existing state vector (its dimension must be a power of two).
    pub fn from_state(state: StateVector) -> Self {
        let n = state.len();
        assert!(
            n.is_power_of_two(),
            "register dimension must be a power of two"
        );
        Self {
            qubits: n.trailing_zeros(),
            state,
        }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// The underlying state vector.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Consumes the register and returns the state vector.
    pub fn into_state(self) -> StateVector {
        self.state
    }

    /// Resets the register to the uniform superposition in place, reusing
    /// the amplitude allocations (the between-trials reset on the engine's
    /// circuit backend).
    pub fn reset_uniform(&mut self) {
        self.state.fill_uniform();
    }

    /// Applies a single-qubit gate (a 2×2 unitary) to qubit `q`.
    ///
    /// This is the general per-gate reference path: butterflies over both
    /// amplitude planes, with the imaginary plane skipped when the state is
    /// known real and the gate is real.  Hadamard walls go through the fast
    /// Walsh–Hadamard transform instead (see the module docs).
    ///
    /// # Panics
    /// Panics if the matrix is not 2×2 or not unitary, or `q` is out of
    /// range.
    pub fn apply_single_qubit(&mut self, q: u32, gate: &Matrix) {
        assert!(q < self.qubits, "qubit index {q} out of range");
        assert_eq!(gate.rows(), 2, "single-qubit gate must be 2x2");
        assert_eq!(gate.cols(), 2, "single-qubit gate must be 2x2");
        debug_assert!(gate.is_unitary(1e-9), "gate must be unitary");
        // Bit position counted from the most-significant address bit.
        let stride = 1usize << (self.qubits - 1 - q);
        let g = [gate[(0, 0)], gate[(0, 1)], gate[(1, 0)], gate[(1, 1)]];
        let gate_is_real = g.iter().all(|z| z.im == 0.0);
        let real_only = self.state.is_real_only();
        let (re, im) = self.state.planes_mut_raw();
        if gate_is_real {
            // Real gate: the planes never mix; sweep each active plane with
            // scalar butterflies.
            real_butterflies(re, stride, g[0].re, g[1].re, g[2].re, g[3].re);
            if !real_only {
                real_butterflies(im, stride, g[0].re, g[1].re, g[2].re, g[3].re);
            }
        } else {
            complex_butterflies(re, im, stride, &g);
            self.state.set_real_only(false);
        }
    }

    /// Applies the Hadamard gate to qubit `q`.
    pub fn hadamard(&mut self, q: u32) {
        let h = hadamard_matrix();
        self.apply_single_qubit(q, &h);
    }

    /// Applies Hadamard to every qubit (the `H^{⊗n}` wall used to prepare and
    /// unprepare the uniform superposition) as one in-place fast
    /// Walsh–Hadamard transform per active plane, normalisation folded in.
    pub fn hadamard_all(&mut self) {
        let real_only = self.state.is_real_only();
        let (re, im) = self.state.planes_mut_raw();
        soa::fwht_normalized(re);
        if !real_only {
            soa::fwht_normalized(im);
        }
    }

    /// Multiplies the amplitude of a single basis state by a phase.
    pub fn phase_on_basis_state(&mut self, index: usize, phase: Complex64) {
        debug_assert!(
            (phase.abs() - 1.0).abs() < 1e-9,
            "phase must have unit modulus"
        );
        let rotated = self.state.amplitude(index) * phase;
        self.state.set_amplitude(index, rotated);
    }

    /// The reflection `2|0…0⟩⟨0…0| − I` (phase flip on every basis state
    /// except all-zeros), used inside the circuit form of the diffusion
    /// operator.
    pub fn reflect_about_zero(&mut self) {
        let real_only = self.state.is_real_only();
        let (re, im) = self.state.planes_mut_raw();
        soa::negate(&mut re[1..]);
        if !real_only {
            soa::negate(&mut im[1..]);
        }
    }

    /// The Grover diffusion operator built as a circuit:
    /// `H^{⊗n} · (2|0⟩⟨0| − I) · H^{⊗n}`.
    ///
    /// Equivalent to [`StateVector::invert_about_mean`]; the equivalence is
    /// asserted by tests.
    pub fn diffusion_via_circuit(&mut self) {
        self.hadamard_all();
        self.reflect_about_zero();
        self.hadamard_all();
    }

    /// Applies Hadamard to each of the `low` least-significant address
    /// qubits — the "offset" register `z` of the partial-search problem,
    /// leaving the "block" register `y` (the first `k` qubits) untouched.
    /// One blocked fast Walsh–Hadamard transform per active plane.
    pub fn hadamard_low_qubits(&mut self, low: u32) {
        assert!(
            low <= self.qubits,
            "cannot address {low} low qubits of a {}-qubit register",
            self.qubits
        );
        let block = 1usize << low;
        let real_only = self.state.is_real_only();
        let (re, im) = self.state.planes_mut_raw();
        soa::fwht_blocks_normalized(re, block);
        if !real_only {
            soa::fwht_blocks_normalized(im, block);
        }
    }

    /// The reflection `I_{[K]} ⊗ (2|0…0⟩⟨0…0| − I)` acting on the `low`
    /// least-significant qubits: every basis state whose offset bits are not
    /// all zero has its sign flipped.
    pub fn reflect_about_zero_low_qubits(&mut self, low: u32) {
        assert!(
            low <= self.qubits,
            "cannot address {low} low qubits of a {}-qubit register",
            self.qubits
        );
        let block = 1usize << low;
        let real_only = self.state.is_real_only();
        let (re, im) = self.state.planes_mut_raw();
        for chunk in re.chunks_exact_mut(block) {
            soa::negate(&mut chunk[1..]);
        }
        if !real_only {
            for chunk in im.chunks_exact_mut(block) {
                soa::negate(&mut chunk[1..]);
            }
        }
    }

    /// The per-block diffusion `I_{[K]} ⊗ I_{0,[N/K]}` of Section 2.2 built
    /// as a circuit: Hadamard walls and a reflection about zero on the offset
    /// register only.
    ///
    /// Equivalent to [`StateVector::invert_about_mean_per_block`] for
    /// power-of-two block sizes; `crate::circuit` asserts the equivalence.
    pub fn block_diffusion_via_circuit(&mut self, block_qubits: u32) {
        self.hadamard_low_qubits(block_qubits);
        self.reflect_about_zero_low_qubits(block_qubits);
        self.hadamard_low_qubits(block_qubits);
    }
}

/// In-place butterflies of a **real** 2×2 gate over one plane: each pair
/// `(i, i + stride)` maps through `[[g00, g01], [g10, g11]]` independently.
fn real_butterflies(plane: &mut [f64], stride: usize, g00: f64, g01: f64, g10: f64, g11: f64) {
    let n = plane.len();
    let mut base = 0usize;
    while base < n {
        let (lo, hi) = plane[base..base + 2 * stride].split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a;
            let y = *b;
            *a = g00 * x + g01 * y;
            *b = g10 * x + g11 * y;
        }
        base += 2 * stride;
    }
}

/// In-place butterflies of a general complex 2×2 gate over both planes.
fn complex_butterflies(re: &mut [f64], im: &mut [f64], stride: usize, g: &[Complex64; 4]) {
    let n = re.len();
    let mut base = 0usize;
    while base < n {
        for i in base..base + stride {
            let j = i + stride;
            let a = Complex64::new(re[i], im[i]);
            let b = Complex64::new(re[j], im[j]);
            let na = g[0] * a + g[1] * b;
            let nb = g[2] * a + g[3] * b;
            re[i] = na.re;
            im[i] = na.im;
            re[j] = nb.re;
            im[j] = nb.im;
        }
        base += 2 * stride;
    }
}

/// The 2×2 Hadamard matrix.
pub fn hadamard_matrix() -> Matrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Matrix::from_real_rows(2, 2, &[s, s, s, -s])
}

/// The 2×2 Pauli-X (NOT) matrix.
pub fn pauli_x_matrix() -> Matrix {
    Matrix::from_real_rows(2, 2, &[0.0, 1.0, 1.0, 0.0])
}

/// The 2×2 Pauli-Z matrix.
pub fn pauli_z_matrix() -> Matrix {
    Matrix::from_real_rows(2, 2, &[1.0, 0.0, 0.0, -1.0])
}

/// The single-qubit phase gate `diag(1, e^{iφ})`.
pub fn phase_matrix(phi: f64) -> Matrix {
    Matrix::from_rows(
        2,
        2,
        vec![
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::cis(phi),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn hadamard_wall_prepares_uniform_superposition() {
        let mut reg = QubitRegister::zeros(4);
        reg.hadamard_all();
        let uniform = StateVector::uniform(16);
        assert_close(reg.state().fidelity(&uniform), 1.0, 1e-12);
    }

    #[test]
    fn hadamard_is_self_inverse() {
        let mut reg = QubitRegister::uniform(3);
        reg.phase_on_basis_state(5, Complex64::from_real(-1.0));
        let before = reg.state().clone();
        reg.hadamard(1);
        reg.hadamard(1);
        assert_close(reg.state().fidelity(&before), 1.0, 1e-12);
    }

    #[test]
    fn fwht_wall_matches_per_qubit_hadamard_sweeps() {
        // The transform replaces n sequential single-qubit sweeps; both
        // paths must produce the same wall, including on complex states.
        for qubits in [1u32, 3, 5, 7] {
            let n = 1usize << qubits;
            let mut amps: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            psq_math::vec_ops::normalize(&mut amps);
            let mut fast = QubitRegister::from_state(StateVector::from_amplitudes(amps.clone()));
            let mut slow = QubitRegister::from_state(StateVector::from_amplitudes(amps));
            fast.hadamard_all();
            let h = hadamard_matrix();
            for q in 0..qubits {
                slow.apply_single_qubit(q, &h);
            }
            for x in 0..n {
                assert!(
                    (fast.state().amplitude(x) - slow.state().amplitude(x)).abs() < 1e-12,
                    "qubits {qubits}, index {x}"
                );
            }
        }
    }

    #[test]
    fn blocked_fwht_matches_per_qubit_low_sweeps() {
        let qubits = 6u32;
        let n = 1usize << qubits;
        for low in [0u32, 1, 3, 6] {
            let mut amps: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(((i * 13 % 7) as f64) / 7.0, ((i * 5 % 11) as f64) / 11.0))
                .collect();
            psq_math::vec_ops::normalize(&mut amps);
            let mut fast = QubitRegister::from_state(StateVector::from_amplitudes(amps.clone()));
            let mut slow = QubitRegister::from_state(StateVector::from_amplitudes(amps));
            fast.hadamard_low_qubits(low);
            let h = hadamard_matrix();
            for q in qubits - low..qubits {
                slow.apply_single_qubit(q, &h);
            }
            for x in 0..n {
                assert!(
                    (fast.state().amplitude(x) - slow.state().amplitude(x)).abs() < 1e-12,
                    "low {low}, index {x}"
                );
            }
        }
    }

    #[test]
    fn diffusion_circuit_matches_inversion_about_mean() {
        let mut reg = QubitRegister::uniform(5);
        // Perturb the state so the diffusion acts non-trivially.
        reg.phase_on_basis_state(7, Complex64::from_real(-1.0));
        reg.phase_on_basis_state(20, Complex64::from_real(-1.0));

        let mut kernel_state = reg.state().clone();
        kernel_state.invert_about_mean();

        reg.diffusion_via_circuit();
        assert_close(reg.state().fidelity(&kernel_state), 1.0, 1e-10);
        // And amplitudes agree entrywise, not just up to phase.
        for i in 0..32 {
            assert!((reg.state().amplitude(i) - kernel_state.amplitude(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn grover_via_circuit_matches_kernel_grover() {
        use crate::oracle::Database;
        let n_qubits = 6;
        let n = 1usize << n_qubits;
        let target = 37usize;
        let db = Database::new(n as u64, target as u64);

        let mut kernel = StateVector::uniform(n);
        let mut circuit = QubitRegister::uniform(n_qubits as u32);

        for _ in 0..3 {
            kernel.grover_iteration(&db);
            // Oracle: phase flip on the target basis state...
            circuit.phase_on_basis_state(target, Complex64::from_real(-1.0));
            // ...then the diffusion circuit.
            circuit.diffusion_via_circuit();
        }
        for i in 0..n {
            assert!((kernel.amplitude(i) - circuit.state().amplitude(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn pauli_gates_are_unitary_and_do_what_they_say() {
        assert!(pauli_x_matrix().is_unitary(1e-12));
        assert!(pauli_z_matrix().is_unitary(1e-12));
        assert!(hadamard_matrix().is_unitary(1e-12));
        assert!(phase_matrix(0.7).is_unitary(1e-12));

        // X on the most significant qubit maps |00⟩ -> |10⟩ (index 0 -> 2).
        let mut reg = QubitRegister::zeros(2);
        reg.apply_single_qubit(0, &pauli_x_matrix());
        assert_close(reg.state().probability(2), 1.0, 1e-12);

        // Z flips the phase of the |1⟩ component of qubit 1.
        let mut reg = QubitRegister::uniform(2);
        reg.apply_single_qubit(1, &pauli_z_matrix());
        assert_close(reg.state().amplitude(0).re, 0.5, 1e-12);
        assert_close(reg.state().amplitude(1).re, -0.5, 1e-12);
    }

    #[test]
    fn complex_gates_mix_the_planes_correctly() {
        // A phase gate makes the state complex; a second application must
        // still match the matrix algebra done by hand.
        let mut reg = QubitRegister::uniform(2);
        let p = phase_matrix(0.9);
        reg.apply_single_qubit(1, &p);
        assert!(!reg.state().is_real_only());
        reg.apply_single_qubit(1, &p);
        let expected = Complex64::cis(1.8) * Complex64::from_real(0.5);
        assert!((reg.state().amplitude(1) - expected).abs() < 1e-12);
        assert!((reg.state().amplitude(0) - Complex64::from_real(0.5)).abs() < 1e-12);
        assert_close(reg.state().norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn register_round_trip_through_state_vector() {
        let reg = QubitRegister::uniform(3);
        assert_eq!(reg.qubits(), 3);
        let state = reg.clone().into_state();
        let reg2 = QubitRegister::from_state(state);
        assert_eq!(reg2.qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_state_rejects_non_power_of_two_dimensions() {
        QubitRegister::from_state(StateVector::uniform(12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_missing_qubit_panics() {
        let mut reg = QubitRegister::zeros(2);
        reg.hadamard(2);
    }
}
