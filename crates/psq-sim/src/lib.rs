//! Quantum database-search simulator.
//!
//! This crate is the "quantum hardware" substitute for the reproduction of
//! Grover & Radhakrishnan's partial-search paper.  It provides:
//!
//! * [`oracle`] — the database `f : [N] → {0,1}` with a unique marked item,
//!   an instrumented [`oracle::Database`] that charges every classical probe
//!   and every quantum oracle application to a shared
//!   [`query_counter::QueryCounter`], and the block [`oracle::Partition`] of
//!   the partial-search problem;
//! * [`statevector`] — exact complex state-vector simulation with the
//!   reflections used by the paper (oracle phase flip, global diffusion,
//!   per-block diffusion, Step-3 non-target inversion), parallelised over
//!   threads for large registers;
//! * [`gates`] — the circuit-level view (Hadamard walls, reflection about
//!   zero) used to validate that the reflection kernels implement the same
//!   unitaries as the textbook circuits;
//! * [`circuit`] — the paper's operators rebuilt gate by gate (including the
//!   Step-3 ancilla construction) and cross-checked against the kernels;
//! * [`reduced`] — the exact block-symmetric reduced simulator, which evolves
//!   the three amplitudes `(a_t, a_tb, a_nb)` and therefore handles
//!   arbitrarily large `N` in `O(#iterations)` time;
//! * [`measure`] — standard-basis and block measurements;
//! * [`scratch`] — reusable amplitude buffers that keep the simulation hot
//!   path allocation-free across repeated trials;
//! * [`trace`] — labelled amplitude snapshots for regenerating the paper's
//!   figures.

pub mod circuit;
pub mod gates;
pub mod measure;
pub mod oracle;
pub mod query_counter;
pub mod reduced;
pub mod scratch;
pub mod statevector;
pub mod trace;

pub use oracle::{Database, FullSearchOutcome, PartialSearchOutcome, Partition};
pub use query_counter::{QueryCounter, QuerySpan};
pub use reduced::ReducedState;
pub use scratch::AmplitudeScratch;
pub use statevector::StateVector;
pub use trace::{AmplitudeSummary, StageTrace};
