//! Quantum database-search simulator.
//!
//! This crate is the "quantum hardware" substitute for the reproduction of
//! Grover & Radhakrishnan's partial-search paper.  It provides:
//!
//! * [`oracle`] — the database `f : [N] → {0,1}` with a unique marked item,
//!   an instrumented [`oracle::Database`] that charges every classical probe
//!   and every quantum oracle application to a shared
//!   [`query_counter::QueryCounter`], and the block [`oracle::Partition`] of
//!   the partial-search problem;
//! * [`statevector`] — exact complex state-vector simulation with the
//!   reflections used by the paper (oracle phase flip, global diffusion,
//!   per-block diffusion, Step-3 non-target inversion), parallelised over
//!   threads for large registers;
//! * [`gates`] — the circuit-level view (Hadamard walls, reflection about
//!   zero) used to validate that the reflection kernels implement the same
//!   unitaries as the textbook circuits;
//! * [`circuit`] — the paper's operators rebuilt gate by gate (including the
//!   Step-3 ancilla construction) and cross-checked against the kernels;
//! * [`reduced`] — the exact block-symmetric reduced simulator, which evolves
//!   the three amplitudes `(a_t, a_tb, a_nb)` and therefore handles
//!   arbitrarily large `N` in `O(#iterations)` time;
//! * [`sparse`] — the value-class sparse simulator: one `(value,
//!   population)` entry per amplitude-equivalence class, exact huge-`N`
//!   dynamics in `O(#classes)` per operator, with a class-splitting ladder
//!   for noise channels the symmetric form cannot express;
//! * [`measure`] — standard-basis and block measurements;
//! * [`noise`] — per-query depolarizing / dephasing / faulty-oracle
//!   channels as deterministic quantum trajectories on the SoA planes;
//! * [`scratch`] — reusable amplitude buffers that keep the simulation hot
//!   path allocation-free across repeated trials;
//! * [`trace`] — labelled amplitude snapshots for regenerating the paper's
//!   figures.
//!
//! # Amplitude layout and fused sweeps
//!
//! Amplitudes are stored **structure-of-arrays**: two separate `f64` planes
//! (real and imaginary, [`psq_math::soa::SoaVec`]) instead of one
//! `Vec<Complex64>`. Every operator the partial-search algorithm uses has
//! real coefficients, so the planes evolve independently, each kernel is a
//! straight-line vectorizable sweep over a `&[f64]`, and a conservative
//! known-real flag lets the imaginary plane be skipped entirely (the
//! partial-search dynamics never leave the real subspace, halving memory
//! traffic). On top of the layout, iteration runs are **fused**: each
//! Grover/per-block iteration applies the oracle flip plus the inversion
//! about the mean in a single sweep per plane that also accumulates the
//! (block) sums the next iteration needs —
//! [`statevector::StateVector::grover_iterations`] and
//! [`statevector::StateVector::block_grover_iterations`] cost `ℓ + 1`
//! passes for `ℓ` iterations instead of `2ℓ`. The circuit backend's
//! Hadamard walls run as one in-place radix-2 fast Walsh–Hadamard transform
//! per plane with the `1/√N` normalisation folded into the final butterfly
//! level, replacing `n` sequential single-qubit sweeps. Unfused
//! single-iteration and per-gate paths are kept as the reference the
//! property tests pin the fused kernels against (≤ 1e-12).

pub mod circuit;
pub mod gates;
pub mod measure;
pub mod noise;
pub mod oracle;
pub mod query_counter;
pub mod reduced;
pub mod scratch;
pub mod sparse;
pub mod statevector;
pub mod trace;

pub use noise::{NoiseModel, NoiseSpec, QueryNoise};
pub use oracle::{Database, FullSearchOutcome, PartialSearchOutcome, Partition};
pub use query_counter::{QueryCounter, QuerySpan};
pub use reduced::ReducedState;
pub use scratch::AmplitudeScratch;
pub use sparse::SparseState;
pub use statevector::StateVector;
pub use trace::{AmplitudeSummary, StageTrace};
