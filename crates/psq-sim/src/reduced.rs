//! Block-symmetric reduced simulation.
//!
//! Every operator used by the paper's algorithms (the oracle reflection, the
//! global diffusion, the per-block diffusion, and the Step-3 non-target
//! inversion) is symmetric under (a) permutations of the non-target items
//! inside the target block, (b) permutations of the items inside each
//! non-target block, and (c) permutations of the non-target blocks.  Starting
//! from the uniform superposition, the state therefore always has the form
//!
//! ```text
//!   a_t |t⟩  +  a_tb Σ_{z ≠ z_t} |y_t z⟩  +  a_nb Σ_{y ≠ y_t, z} |y z⟩
//! ```
//!
//! and is completely described by the three real numbers `(a_t, a_tb, a_nb)`.
//! [`ReducedState`] evolves exactly those three numbers, so a full run of the
//! partial-search algorithm costs `O(#iterations)` arithmetic operations
//! *independently of N*.  This is what lets the benchmark harness regenerate
//! the paper's asymptotic query-count table at `N = 2^40` and beyond, and it
//! is cross-checked against the full state-vector simulator at small `N` in
//! the integration tests.

use crate::oracle::{Database, Partition};
use crate::statevector::StateVector;
use psq_math::complex::Complex64;

/// Exact simulator for block-symmetric states (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReducedState {
    /// Database size `N` (kept in floating point so sizes beyond `2^53` can
    /// still be explored; exactness of the dynamics does not depend on `N`
    /// being integral).
    n: f64,
    /// Number of blocks `K`.
    k: f64,
    /// Amplitude of the target basis state.
    amp_target: f64,
    /// Amplitude of each non-target basis state in the target block.
    amp_target_block: f64,
    /// Amplitude of each basis state in the non-target blocks.
    amp_nontarget: f64,
    /// Oracle queries charged so far.
    queries: u64,
}

impl ReducedState {
    /// The uniform superposition over a database of `n` items in `k` blocks.
    pub fn uniform(n: f64, k: f64) -> Self {
        assert!(n >= 2.0, "database must have at least two items");
        assert!(
            k >= 1.0 && k <= n,
            "block count {k} out of range for n = {n}"
        );
        let amp = 1.0 / n.sqrt();
        Self {
            n,
            k,
            amp_target: amp,
            amp_target_block: amp,
            amp_nontarget: amp,
            queries: 0,
        }
    }

    /// A block-symmetric state with explicit amplitudes and a zeroed query
    /// counter.
    ///
    /// This is the re-entry point for simulators that carry a symmetric
    /// state in another representation (the sparse value-class simulator
    /// promotes its canonical three-class form to a `ReducedState` so bulk
    /// rotations run the *identical* closed-form arithmetic — bit-parity
    /// between the two backends is by construction, not by tolerance).
    pub fn from_amplitudes(
        n: f64,
        k: f64,
        amp_target: f64,
        amp_target_block: f64,
        amp_nontarget: f64,
    ) -> Self {
        assert!(n >= 2.0, "database must have at least two items");
        assert!(
            k >= 1.0 && k <= n,
            "block count {k} out of range for n = {n}"
        );
        Self {
            n,
            k,
            amp_target,
            amp_target_block,
            amp_nontarget,
            queries: 0,
        }
    }

    /// Database size `N`.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Number of blocks `K`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Items per block `N / K`.
    pub fn block_size(&self) -> f64 {
        self.n / self.k
    }

    /// Oracle queries charged so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Amplitude of the target state.
    pub fn amp_target(&self) -> f64 {
        self.amp_target
    }

    /// Amplitude of each non-target state in the target block.
    pub fn amp_target_block(&self) -> f64 {
        self.amp_target_block
    }

    /// Amplitude of each state in the non-target blocks.
    pub fn amp_nontarget(&self) -> f64 {
        self.amp_nontarget
    }

    /// Total squared norm (should remain 1 up to round-off).
    pub fn norm_sqr(&self) -> f64 {
        let b = self.block_size();
        self.amp_target * self.amp_target
            + (b - 1.0) * self.amp_target_block * self.amp_target_block
            + (self.n - b) * self.amp_nontarget * self.amp_nontarget
    }

    /// Probability of measuring the target item.
    pub fn target_probability(&self) -> f64 {
        self.amp_target * self.amp_target
    }

    /// Probability of the measurement landing anywhere in the target block.
    pub fn target_block_probability(&self) -> f64 {
        let b = self.block_size();
        self.amp_target * self.amp_target
            + (b - 1.0) * self.amp_target_block * self.amp_target_block
    }

    /// Probability of the measurement landing outside the target block.
    pub fn nontarget_probability(&self) -> f64 {
        let b = self.block_size();
        (self.n - b) * self.amp_nontarget * self.amp_nontarget
    }

    /// Mean amplitude over the whole register.
    pub fn mean_amplitude(&self) -> f64 {
        let b = self.block_size();
        (self.amp_target + (b - 1.0) * self.amp_target_block + (self.n - b) * self.amp_nontarget)
            / self.n
    }

    /// Mean amplitude over the `N − 1` non-target states (the dotted line in
    /// Figure 5, and the reflection axis of Step 3).
    pub fn mean_nontarget_amplitude(&self) -> f64 {
        let b = self.block_size();
        ((b - 1.0) * self.amp_target_block + (self.n - b) * self.amp_nontarget) / (self.n - 1.0)
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    /// The oracle reflection `I_t` (phase flip on the target).  One query.
    pub fn oracle_flip(&mut self) {
        self.amp_target = -self.amp_target;
        self.queries += 1;
    }

    /// The global diffusion `I_0`: inversion about the mean of all `N`
    /// amplitudes.
    pub fn global_diffusion(&mut self) {
        let twice_mean = 2.0 * self.mean_amplitude();
        self.amp_target = twice_mean - self.amp_target;
        self.amp_target_block = twice_mean - self.amp_target_block;
        self.amp_nontarget = twice_mean - self.amp_nontarget;
    }

    /// The per-block diffusion `I_[K] ⊗ I_{0,[N/K]}`: inversion about the
    /// mean inside every block.  Non-target blocks are uniform, hence fixed.
    pub fn block_diffusion(&mut self) {
        let b = self.block_size();
        let block_mean = (self.amp_target + (b - 1.0) * self.amp_target_block) / b;
        let twice = 2.0 * block_mean;
        self.amp_target = twice - self.amp_target;
        self.amp_target_block = twice - self.amp_target_block;
        // amp_nontarget is a fixed point of its block's inversion.
    }

    /// Step 3's controlled inversion: the reflection about the mean of the
    /// `N − 1` non-target amplitudes, with the target amplitude left
    /// unchanged (see [`StateVector::invert_about_mean_excluding_target`]
    /// for the relation to the paper's ancilla circuit).
    /// Charges one query (the marking operation `M`).
    pub fn diffusion_excluding_target(&mut self) {
        let twice = 2.0 * self.mean_nontarget_amplitude();
        self.amp_target_block = twice - self.amp_target_block;
        self.amp_nontarget = twice - self.amp_nontarget;
        self.queries += 1;
    }

    /// One standard Grover iteration `A = I_0 · I_t`.  One query.
    pub fn grover_iteration(&mut self) {
        self.oracle_flip();
        self.global_diffusion();
    }

    /// `iters` standard Grover iterations.
    ///
    /// Uses the closed rotation form when the non-target amplitudes are
    /// uniform (`a_tb == a_nb`, which holds for any run that applies global
    /// iterations before block ones — in particular the three-step
    /// algorithm): the state then lives in the two-dimensional span of the
    /// target and the uniform non-target superposition, where `iters`
    /// iterations advance the rotation angle by `2·iters·θ` with
    /// `sin θ = 1/√N`. This makes a bulk run O(1) arithmetic instead of
    /// O(iters), which is what lets the engine's reduced backend serve
    /// `N = 2^40` jobs in microseconds; it is also *more* accurate than
    /// stepping (no per-iteration round-off accumulation). Falls back to
    /// exact stepping when the block symmetry between target and non-target
    /// blocks is broken. Queries are charged identically either way.
    pub fn grover_iterations(&mut self, iters: u64) {
        if iters == 0 {
            return;
        }
        // Bitwise equality is the right test: the two amplitudes follow
        // identical update formulas from identical starting values, so any
        // divergence means a block iteration intervened.
        if self.amp_target_block.to_bits() != self.amp_nontarget.to_bits() {
            for _ in 0..iters {
                self.grover_iteration();
            }
            return;
        }
        let theta = psq_math::angle::grover_angle(self.n);
        let rest = (self.n - 1.0).sqrt() * self.amp_nontarget;
        let radius = self.amp_target.hypot(rest);
        let phi = self.amp_target.atan2(rest) + 2.0 * iters as f64 * theta;
        self.amp_target = radius * phi.sin();
        let amp_rest = radius * phi.cos() / (self.n - 1.0).sqrt();
        self.amp_target_block = amp_rest;
        self.amp_nontarget = amp_rest;
        self.queries += iters;
    }

    /// One per-block iteration `A_[N/K] = (I_[K] ⊗ I_{0,[N/K]}) · I_t`.
    /// One query.
    pub fn block_grover_iteration(&mut self) {
        self.oracle_flip();
        self.block_diffusion();
    }

    /// `iters` per-block Grover iterations.
    ///
    /// Always uses the closed rotation form: the per-block dynamics are
    /// standard Grover on the `b = N/K` items of the target block (the
    /// non-target blocks are uniform, hence fixed points), confined to the
    /// two-dimensional span of the target and the in-block rest component,
    /// with `sin θ_b = 1/√b`. O(1) arithmetic for any iteration count;
    /// queries are charged identically to stepping.
    pub fn block_grover_iterations(&mut self, iters: u64) {
        if iters == 0 {
            return;
        }
        let b = self.block_size();
        if b < 2.0 {
            // Degenerate single-item blocks (k == n): the rotation picture
            // has no in-block rest component; step exactly instead.
            for _ in 0..iters {
                self.block_grover_iteration();
            }
            return;
        }
        let theta = psq_math::angle::grover_angle(b);
        let rest = (b - 1.0).sqrt() * self.amp_target_block;
        let radius = self.amp_target.hypot(rest);
        let phi = self.amp_target.atan2(rest) + 2.0 * iters as f64 * theta;
        self.amp_target = radius * phi.sin();
        self.amp_target_block = radius * phi.cos() / (b - 1.0).sqrt();
        self.queries += iters;
    }

    // ------------------------------------------------------------------
    // Cross-checking against the full simulator
    // ------------------------------------------------------------------

    /// Materialises the corresponding full state vector for a concrete
    /// database and partition (only sensible for small `N`).
    ///
    /// # Panics
    /// Panics if `n`/`k` are not integral or do not match the partition.
    pub fn to_state_vector(&self, db: &Database, partition: &Partition) -> StateVector {
        let mut out =
            StateVector::from_amplitudes(vec![Complex64::ZERO; partition.size() as usize]);
        self.write_state_vector_into(db, partition, &mut out);
        out
    }

    /// Writes the corresponding full state vector into `out` in place,
    /// reusing its allocation (the scratch-friendly form of
    /// [`ReducedState::to_state_vector`] for repeated cross-checks).
    ///
    /// # Panics
    /// Panics if `n`/`k` do not match the partition or `out` has the wrong
    /// dimension.
    pub fn write_state_vector_into(
        &self,
        db: &Database,
        partition: &Partition,
        out: &mut StateVector,
    ) {
        assert_eq!(self.n, partition.size() as f64, "partition size mismatch");
        assert_eq!(
            self.k,
            partition.blocks() as f64,
            "partition block-count mismatch"
        );
        assert_eq!(db.size(), partition.size(), "database/partition mismatch");
        assert_eq!(
            out.len(),
            partition.size() as usize,
            "output state dimension mismatch"
        );
        let target = db.target() as usize;
        let target_block = partition.block_of(db.target());
        let range = partition.block_range(target_block);
        // The reduced dynamics are real; write the planes directly and keep
        // the state's known-real fast path.
        let (re, im) = out.planes_mut_raw();
        re.fill(self.amp_nontarget);
        re[range.start as usize..range.end as usize].fill(self.amp_target_block);
        re[target] = self.amp_target;
        im.fill(0.0);
        out.set_real_only(true);
    }

    /// Extracts the reduced description from a full state vector, verifying
    /// that the state really is block-symmetric to within `tol`.
    ///
    /// Returns `None` if the state is not symmetric (which would indicate a
    /// bug in an algorithm that is supposed to preserve the symmetry).
    pub fn from_state_vector(
        state: &StateVector,
        db: &Database,
        partition: &Partition,
        tol: f64,
    ) -> Option<Self> {
        let n = partition.size();
        let target = db.target();
        let target_block = partition.block_of(target);
        let mut amp_target = 0.0f64;
        let mut amp_tb: Option<f64> = None;
        let mut amp_nb: Option<f64> = None;
        for x in 0..n {
            let a = state.amplitude(x as usize);
            if a.im.abs() > tol {
                return None;
            }
            let value = a.re;
            if x == target {
                amp_target = value;
            } else if partition.block_of(x) == target_block {
                match amp_tb {
                    None => amp_tb = Some(value),
                    Some(existing) if (existing - value).abs() <= tol => {}
                    Some(_) => return None,
                }
            } else {
                match amp_nb {
                    None => amp_nb = Some(value),
                    Some(existing) if (existing - value).abs() <= tol => {}
                    Some(_) => return None,
                }
            }
        }
        Some(Self {
            n: n as f64,
            k: partition.blocks() as f64,
            amp_target,
            amp_target_block: amp_tb.unwrap_or(amp_target),
            amp_nontarget: amp_nb.unwrap_or(0.0),
            queries: db.queries(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn uniform_state_is_normalised() {
        let s = ReducedState::uniform(1e12, 64.0);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
        assert_close(s.target_probability(), 1e-12, 1e-15);
        assert_eq!(s.queries(), 0);
    }

    #[test]
    fn grover_iteration_matches_rotation_formula() {
        let n = 4096.0;
        let mut s = ReducedState::uniform(n, 8.0);
        let theta = psq_math::angle::grover_angle(n);
        for j in 1..=20u64 {
            s.grover_iteration();
            let expected = ((2 * j + 1) as f64 * theta).sin();
            assert_close(s.amp_target(), expected, 1e-9);
            assert_close(s.norm_sqr(), 1.0, 1e-9);
        }
        assert_eq!(s.queries(), 20);
    }

    #[test]
    fn optimal_iterations_reach_high_success_probability() {
        let n = 1u64 << 30;
        let mut s = ReducedState::uniform(n as f64, 1024.0);
        let iters = psq_math::angle::optimal_grover_iterations(n as f64);
        s.grover_iterations(iters);
        assert!(s.target_probability() > 1.0 - 1e-8);
        assert_eq!(s.queries(), iters);
    }

    #[test]
    fn block_diffusion_fixes_nontarget_blocks() {
        let mut s = ReducedState::uniform(4096.0, 16.0);
        s.grover_iterations(10);
        let before_nb = s.amp_nontarget();
        s.block_grover_iteration();
        assert_close(s.amp_nontarget(), before_nb, 1e-15);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn block_iteration_rotates_within_target_block() {
        // Within the target block the dynamics are standard Grover on N/K
        // items; check the angle advanced per iteration is 2·arcsin(√(K/N)).
        let n = 1 << 16;
        let k = 16.0;
        let mut s = ReducedState::uniform(n as f64, k);
        // Start from a state where the target block holds all its mass
        // uniformly: that is the uniform superposition restricted to any one
        // block, which we emulate by comparing before/after angles instead.
        let b = s.block_size();
        let theta_block = psq_math::angle::grover_angle(b);
        // Project onto the target block's 2-D subspace: angle of the in-block
        // state to the in-block uniform "rest" component.
        let in_block_norm = s.target_block_probability().sqrt();
        let angle_before = (s.amp_target() / in_block_norm).asin();
        s.block_grover_iteration();
        let in_block_norm_after = s.target_block_probability().sqrt();
        assert_close(in_block_norm, in_block_norm_after, 1e-12);
        let angle_after = (s.amp_target() / in_block_norm_after).asin();
        assert_close(angle_after - angle_before, 2.0 * theta_block, 1e-6);
    }

    #[test]
    fn diffusion_excluding_target_charges_query_and_fixes_target() {
        let mut s = ReducedState::uniform(256.0, 4.0);
        s.grover_iterations(3);
        let target_before = s.amp_target();
        let q_before = s.queries();
        s.diffusion_excluding_target();
        assert_close(s.amp_target(), target_before, 1e-15);
        assert_eq!(s.queries(), q_before + 1);
        assert_close(s.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn round_trip_through_full_state_vector() {
        let db = Database::new(24, 13);
        let partition = Partition::new(24, 3);
        let mut s = ReducedState::uniform(24.0, 3.0);
        s.grover_iterations(2);
        s.block_grover_iteration();
        let full = s.to_state_vector(&db, &partition);
        assert!(full.is_normalized(1e-9));
        let recovered = ReducedState::from_state_vector(&full, &db, &partition, 1e-9)
            .expect("state must be block-symmetric");
        assert_close(recovered.amp_target(), s.amp_target(), 1e-12);
        assert_close(recovered.amp_target_block(), s.amp_target_block(), 1e-12);
        assert_close(recovered.amp_nontarget(), s.amp_nontarget(), 1e-12);
    }

    #[test]
    fn bulk_rotation_form_matches_exact_stepping() {
        // The closed rotation form must agree with step-by-step evolution
        // through a full three-step schedule (global, then block, then the
        // Step-3 inversion).
        let (n, k) = (4096.0, 8.0);
        let mut bulk = ReducedState::uniform(n, k);
        let mut step = ReducedState::uniform(n, k);
        bulk.grover_iterations(37);
        for _ in 0..37 {
            step.grover_iteration();
        }
        assert_close(bulk.amp_target(), step.amp_target(), 1e-10);
        assert_close(bulk.amp_target_block(), step.amp_target_block(), 1e-10);
        assert_close(bulk.amp_nontarget(), step.amp_nontarget(), 1e-10);
        assert_eq!(bulk.queries(), step.queries());

        bulk.block_grover_iterations(11);
        for _ in 0..11 {
            step.block_grover_iteration();
        }
        assert_close(bulk.amp_target(), step.amp_target(), 1e-10);
        assert_close(bulk.amp_target_block(), step.amp_target_block(), 1e-10);
        assert_close(bulk.amp_nontarget(), step.amp_nontarget(), 1e-10);
        assert_eq!(bulk.queries(), step.queries());
        assert_close(bulk.norm_sqr(), 1.0, 1e-9);
    }

    #[test]
    fn bulk_global_iterations_fall_back_when_block_symmetry_is_broken() {
        // After block iterations a_tb != a_nb, so the 2-D global rotation
        // picture no longer applies; the bulk method must step exactly.
        let (n, k) = (1024.0, 4.0);
        let mut bulk = ReducedState::uniform(n, k);
        let mut step = ReducedState::uniform(n, k);
        bulk.block_grover_iterations(5);
        for _ in 0..5 {
            step.block_grover_iteration();
        }
        bulk.grover_iterations(7);
        for _ in 0..7 {
            step.grover_iteration();
        }
        assert_close(bulk.amp_target(), step.amp_target(), 1e-10);
        assert_close(bulk.amp_target_block(), step.amp_target_block(), 1e-10);
        assert_close(bulk.amp_nontarget(), step.amp_nontarget(), 1e-10);
        assert_eq!(bulk.queries(), step.queries());
    }

    #[test]
    fn zero_iterations_are_bitwise_no_ops() {
        let mut s = ReducedState::uniform(1e9, 32.0);
        s.grover_iterations(3);
        let before = s;
        s.grover_iterations(0);
        s.block_grover_iterations(0);
        assert_eq!(s, before);
    }

    #[test]
    fn bulk_rotation_handles_astronomical_sizes_quickly() {
        // 2^40 items: the stepped loop would take ~8·10^5 iterations; the
        // rotation form is O(1) and must still land on the theory curve.
        let n = (1u64 << 40) as f64;
        let mut s = ReducedState::uniform(n, 64.0);
        let iters = psq_math::angle::optimal_grover_iterations(n);
        s.grover_iterations(iters);
        assert!(s.target_probability() > 1.0 - 1e-8);
        assert_eq!(s.queries(), iters);
    }

    #[test]
    fn write_state_vector_into_matches_to_state_vector() {
        let db = Database::new(24, 13);
        let partition = Partition::new(24, 3);
        let mut s = ReducedState::uniform(24.0, 3.0);
        s.grover_iterations(2);
        s.block_grover_iterations(2);
        let fresh = s.to_state_vector(&db, &partition);
        let mut reused = StateVector::uniform(24);
        s.write_state_vector_into(&db, &partition, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn from_state_vector_rejects_asymmetric_states() {
        let db = Database::new(12, 0);
        let partition = Partition::new(12, 3);
        let mut amps = vec![0.0f64; 12];
        amps[0] = 0.9;
        amps[1] = 0.3;
        amps[2] = 0.2; // breaks symmetry inside the target block
        let state = StateVector::from_real_amplitudes(&amps);
        assert!(ReducedState::from_state_vector(&state, &db, &partition, 1e-9).is_none());
    }

    #[test]
    fn reduced_matches_full_simulator_dynamics() {
        // The core cross-check: run the same operator sequence on both
        // simulators and compare amplitudes after every step.
        let n = 48u64;
        let k = 4u64;
        let db = Database::new(n, 29);
        let partition = Partition::new(n, k);
        let mut full = StateVector::uniform(n as usize);
        let mut reduced = ReducedState::uniform(n as f64, k as f64);

        for step in 0..6 {
            if step % 2 == 0 {
                full.grover_iteration(&db);
                reduced.grover_iteration();
            } else {
                full.block_grover_iteration(&db, &partition);
                reduced.block_grover_iteration();
            }
            let from_full = ReducedState::from_state_vector(&full, &db, &partition, 1e-9)
                .expect("full-simulator state should stay block-symmetric");
            assert_close(from_full.amp_target(), reduced.amp_target(), 1e-9);
            assert_close(
                from_full.amp_target_block(),
                reduced.amp_target_block(),
                1e-9,
            );
            assert_close(from_full.amp_nontarget(), reduced.amp_nontarget(), 1e-9);
        }
        assert_eq!(db.queries(), reduced.queries());
    }
}
