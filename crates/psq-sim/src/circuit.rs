//! Circuit-level construction of the paper's operators.
//!
//! The fast simulation path ([`StateVector`]) applies the paper's reflections
//! as streaming kernels.  This module rebuilds the same operators the way a
//! quantum circuit would — Hadamard walls, reflections about `|0…0⟩`, an
//! explicit ancilla qubit for Step 3 — and is used by the test suite to prove
//! the two constructions agree.  Three pieces:
//!
//! * [`grover_iteration_via_circuit`] — `H^{⊗n}(2|0⟩⟨0| − I)H^{⊗n}·I_t`;
//! * [`block_iteration_via_circuit`] — the Section-2.2 operator
//!   `(I_{[K]} ⊗ I_{0,[N/K]})·I_t` with the diffusion built from gates on the
//!   offset register only;
//! * [`Step3Circuit`] — the paper's ancilla construction for Step 3
//!   (operation `M`, then `I_0` controlled on the ancilla being `|0⟩`),
//!   tracked on the joint (address ⊗ ancilla) space, with the final
//!   address-register measurement distribution exposed.
//!
//! The `b = 0` branch is held as structure-of-arrays planes (the same layout
//! as [`StateVector`]); its controlled inversion runs as one fused sweep per
//! plane, and the imaginary plane is skipped entirely while the input state
//! is known to be real (the partial-search dynamics always are).
//!
//! Everything here requires power-of-two dimensions (it is a circuit);
//! the kernels in [`StateVector`] have no such restriction.

use crate::gates::QubitRegister;
use crate::oracle::{Database, Partition};
use crate::scratch::AmplitudeScratch;
use crate::statevector::StateVector;
use psq_math::bits;
use psq_math::complex::Complex64;
use psq_math::soa::{self, SoaVec};

/// One standard Grover iteration built from gates.  Charges one query.
///
/// # Panics
/// Panics unless the database size is a power of two matching the register.
pub fn grover_iteration_via_circuit(register: &mut QubitRegister, db: &Database) {
    assert_eq!(
        1u64 << register.qubits(),
        db.size(),
        "register dimension must match the database"
    );
    db.charge_quantum_queries(1);
    register.phase_on_basis_state(db.target() as usize, Complex64::from_real(-1.0));
    register.diffusion_via_circuit();
}

/// One per-block iteration `A_[N/K]` built from gates.  Charges one query.
///
/// # Panics
/// Panics unless sizes are powers of two and the partition matches.
pub fn block_iteration_via_circuit(
    register: &mut QubitRegister,
    db: &Database,
    partition: &Partition,
) {
    assert_eq!(
        1u64 << register.qubits(),
        db.size(),
        "register/database mismatch"
    );
    assert_eq!(db.size(), partition.size(), "database/partition mismatch");
    let block_qubits = bits::log2_exact(partition.block_size());
    db.charge_quantum_queries(1);
    register.phase_on_basis_state(db.target() as usize, Complex64::from_real(-1.0));
    register.block_diffusion_via_circuit(block_qubits);
}

/// The paper's Step-3 circuit on the joint (address ⊗ ancilla) space.
///
/// Step 3 "moves the target state out": an ancilla `b` (initially `|0⟩`) is
/// flipped exactly on the target (operation `M`, one oracle query) and the
/// global inversion about the average is applied to the address register
/// *controlled on `b = 0`*.  The state is then measured.  Because the two
/// ancilla branches never recombine before measurement, the joint state is
/// represented as the pair of address-register branches.
#[derive(Clone, Debug)]
pub struct Step3Circuit {
    /// The `b = 0` branch of the address register (target slot empty after
    /// M), as structure-of-arrays planes.
    branch_b0: SoaVec,
    /// Whether the branch's imaginary plane is identically zero (inherited
    /// from the input state; lets the probability reads skip the plane).
    branch_real_only: bool,
    /// The `b = 1` branch: only the target address is populated.
    branch_b1_target: Complex64,
    /// The target address.
    target: usize,
}

impl Step3Circuit {
    /// Applies operation `M` and the controlled inversion to the state
    /// produced by Steps 1–2.  Charges one query (for `M`).
    ///
    /// Allocates a fresh branch buffer; hot loops that apply Step 3 many
    /// times should use [`Step3Circuit::apply_with_scratch`] instead.
    pub fn apply(state: &StateVector, db: &Database) -> Self {
        Self::apply_with_scratch(state, db, &mut AmplitudeScratch::new())
    }

    /// Like [`Step3Circuit::apply`], but draws the `b = 0` branch buffer
    /// from `scratch` instead of allocating. Pair with
    /// [`Step3Circuit::recycle`] to return the buffer once the measurement
    /// statistics have been read, making repeated trials allocation-free.
    pub fn apply_with_scratch(
        state: &StateVector,
        db: &Database,
        scratch: &mut AmplitudeScratch,
    ) -> Self {
        assert_eq!(db.size() as usize, state.len(), "database/state mismatch");
        db.charge_quantum_queries(1);
        let target = db.target() as usize;
        // Operation M: the target component moves to the b = 1 branch.
        let branch_b1_target = state.amplitude(target);
        let branch_real_only = state.is_real_only();
        let mut branch_b0 = scratch.take_copy_of(state);
        branch_b0.re[target] = 0.0;
        branch_b0.im[target] = 0.0;
        // Controlled on b = 0: inversion about the average over all N slots
        // (one of which — the target — is now empty), one fused sweep per
        // active plane.
        let n = branch_b0.len() as f64;
        let two_mean_re = 2.0 * soa::sum(&branch_b0.re) / n;
        soa::invert_resum(&mut branch_b0.re, two_mean_re);
        if !branch_real_only {
            let two_mean_im = 2.0 * soa::sum(&branch_b0.im) / n;
            soa::invert_resum(&mut branch_b0.im, two_mean_im);
        }
        Self {
            branch_b0,
            branch_real_only,
            branch_b1_target,
            target,
        }
    }

    /// Probability that measuring the address register yields `x` (summing
    /// over the unobserved ancilla).
    pub fn address_probability(&self, x: usize) -> f64 {
        let mut p = if self.branch_real_only {
            self.branch_b0.re[x] * self.branch_b0.re[x]
        } else {
            self.branch_b0.norm_sqr_at(x)
        };
        if x == self.target {
            p += self.branch_b1_target.norm_sqr();
        }
        p
    }

    /// The full address-register measurement distribution.
    pub fn address_distribution(&self) -> Vec<f64> {
        (0..self.branch_b0.len())
            .map(|x| self.address_probability(x))
            .collect()
    }

    /// Probability that the measurement lands in `block` of the partition.
    pub fn block_probability(&self, partition: &Partition, block: u64) -> f64 {
        let r = partition.block_range(block);
        (r.start as usize..r.end as usize)
            .map(|x| self.address_probability(x))
            .sum()
    }

    /// Total probability (should be 1: the construction is unitary on the
    /// joint space).
    pub fn total_probability(&self) -> f64 {
        (0..self.branch_b0.len())
            .map(|x| self.address_probability(x))
            .sum()
    }

    /// Returns the branch buffer to `scratch` for the next
    /// [`Step3Circuit::apply_with_scratch`] call.
    pub fn recycle(self, scratch: &mut AmplitudeScratch) {
        scratch.recycle(self.branch_b0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    fn run_steps_1_and_2(db: &Database, partition: &Partition, l1: u64, l2: u64) -> StateVector {
        let mut psi = StateVector::uniform(db.size() as usize);
        for _ in 0..l1 {
            psi.grover_iteration(db);
        }
        for _ in 0..l2 {
            psi.block_grover_iteration(db, partition);
        }
        psi
    }

    #[test]
    fn circuit_grover_iteration_matches_the_kernel() {
        let db_a = Database::new(64, 19);
        let db_b = Database::new(64, 19);
        let mut kernel = StateVector::uniform(64);
        let mut circuit = QubitRegister::uniform(6);
        for _ in 0..4 {
            kernel.grover_iteration(&db_a);
            grover_iteration_via_circuit(&mut circuit, &db_b);
        }
        assert_eq!(db_a.queries(), db_b.queries());
        for x in 0..64 {
            assert!((kernel.amplitude(x) - circuit.state().amplitude(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn circuit_block_iteration_matches_the_kernel() {
        let db_a = Database::new(256, 200);
        let db_b = Database::new(256, 200);
        let partition = Partition::new(256, 8);
        let mut kernel = StateVector::uniform(256);
        let mut circuit = QubitRegister::uniform(8);
        // A realistic interleaving: some global iterations then block ones.
        for _ in 0..3 {
            kernel.grover_iteration(&db_a);
            grover_iteration_via_circuit(&mut circuit, &db_b);
        }
        for _ in 0..5 {
            kernel.block_grover_iteration(&db_a, &partition);
            block_iteration_via_circuit(&mut circuit, &db_b, &partition);
        }
        assert_eq!(db_a.queries(), db_b.queries());
        for x in 0..256 {
            assert!(
                (kernel.amplitude(x) - circuit.state().amplitude(x)).abs() < 1e-9,
                "mismatch at {x}"
            );
        }
    }

    #[test]
    fn hadamard_low_qubits_only_touches_the_offset_register() {
        // Starting from a basis state, Hadamards on the offset register must
        // leave the block bits deterministic.
        let mut reg = QubitRegister::from_state(StateVector::basis(64, 42));
        reg.hadamard_low_qubits(4);
        let partition = Partition::new(64, 4); // 2 block bits, 4 offset bits
                                               // All probability stays in block 0b10 = 2.
        let mut in_block = 0.0;
        for x in 0..64usize {
            let p = reg.state().probability(x);
            if partition.block_of(x as u64) == 2 {
                in_block += p;
            } else {
                assert!(
                    p < 1e-20,
                    "leaked into block {}",
                    partition.block_of(x as u64)
                );
            }
        }
        assert_close(in_block, 1.0, 1e-12);
    }

    #[test]
    fn step3_circuit_preserves_probability_and_empties_non_target_blocks() {
        let n = 1u64 << 10;
        let k = 4u64;
        let db = Database::new(n, 777);
        let partition = Partition::new(n, k);
        // Use the plan the real algorithm would use (computed independently
        // here to avoid a dependency cycle with psq-partial).
        let l1 = (std::f64::consts::FRAC_PI_4 * 0.4 * (n as f64).sqrt()) as u64;
        // Rotate within the block far enough to pass the target.
        let l2 = ((n as f64 / k as f64).sqrt() * 0.55) as u64;
        let psi = run_steps_1_and_2(&db, &partition, l1, l2);

        let circuit = Step3Circuit::apply(&psi, &db);
        assert_close(circuit.total_probability(), 1.0, 1e-10);
        // The target block dominates; exact zeroing needs the tuned l2, but
        // even this rough schedule concentrates the mass.
        let target_block = partition.block_of(777);
        assert!(circuit.block_probability(&partition, target_block) > 0.9);
    }

    #[test]
    fn step3_circuit_and_kernel_reflection_agree_on_block_statistics() {
        // The kernel implements the reflection about the mean of the N−1
        // non-target states; the paper's circuit averages over N slots.  The
        // two differ per-amplitude by O(1/N) and only redistribute mass
        // within the target block, so block probabilities agree closely.
        let n = 1u64 << 12;
        let k = 8u64;
        let db_circuit = Database::new(n, 999);
        let db_kernel = Database::new(n, 999);
        let partition = Partition::new(n, k);
        let l1 = (std::f64::consts::FRAC_PI_4 * 0.6 * (n as f64).sqrt()) as u64;
        let l2 = ((n as f64 / k as f64).sqrt() * 0.5) as u64;

        let psi = run_steps_1_and_2(&db_circuit, &partition, l1, l2);
        let circuit = Step3Circuit::apply(&psi, &db_circuit);

        let mut kernel_state = run_steps_1_and_2(&db_kernel, &partition, l1, l2);
        kernel_state.invert_about_mean_excluding_target(&db_kernel);

        assert_eq!(db_circuit.queries(), db_kernel.queries());
        for block in partition.block_indices() {
            let a = circuit.block_probability(&partition, block);
            let b = kernel_state.block_probability(&partition, block);
            assert!(
                (a - b).abs() < 5e-3,
                "block {block}: circuit {a} vs kernel {b}"
            );
        }
    }

    #[test]
    fn step3_on_a_complex_state_uses_both_planes() {
        // Rotate the state into the complex plane first: the branch must
        // carry the imaginary components through the controlled inversion.
        let n = 64u64;
        let db = Database::new(n, 5);
        let mut psi = StateVector::uniform(n as usize);
        psi.apply_oracle_phase_rotation(&db, 1.3);
        psi.invert_about_mean_with_phase(1.3);
        assert!(!psi.is_real_only());
        let circuit = Step3Circuit::apply(&psi, &db);
        assert_close(circuit.total_probability(), 1.0, 1e-10);
        // Reference: the same construction in complex vector arithmetic.
        let mut branch = psi.to_amplitudes();
        let b1 = branch[5];
        branch[5] = Complex64::ZERO;
        let mean = branch.iter().copied().sum::<Complex64>() / n as f64;
        for a in branch.iter_mut() {
            *a = mean * 2.0 - *a;
        }
        for (x, amp) in branch.iter().enumerate() {
            let mut expected = amp.norm_sqr();
            if x == 5 {
                expected += b1.norm_sqr();
            }
            assert_close(circuit.address_probability(x), expected, 1e-12);
        }
    }

    #[test]
    fn step3_charges_exactly_one_query() {
        let db = Database::new(64, 5);
        let psi = StateVector::uniform(64);
        let before = db.queries();
        let _ = Step3Circuit::apply(&psi, &db);
        assert_eq!(db.queries(), before + 1);
    }
}
