//! The database oracle.
//!
//! Section 2.1 models the database as a function `f : [N] → {0,1}` with a
//! unique marked address `t` (the *target*), supplied to quantum algorithms
//! as the unitary `T_f : |x⟩|b⟩ ↦ |x⟩|b ⊕ f(x)⟩` and to classical algorithms
//! as a plain point query.  [`Database`] is that function; both interfaces
//! charge every use to the same [`QueryCounter`].
//!
//! The partial-search problem additionally fixes a partition of `[N]` into
//! `K` equal blocks; [`Partition`] carries that structure (the oracle itself
//! is oblivious to it, exactly as in the paper).

use crate::query_counter::QueryCounter;
use psq_math::bits;
use rand::Rng;

/// A searchable database with a single marked item.
#[derive(Clone, Debug)]
pub struct Database {
    size: u64,
    target: u64,
    counter: QueryCounter,
}

impl Database {
    /// Creates a database of `size` items whose unique marked item is
    /// `target`.
    ///
    /// # Panics
    /// Panics if `target >= size` or `size == 0`.
    pub fn new(size: u64, target: u64) -> Self {
        assert!(size > 0, "database must contain at least one item");
        assert!(
            target < size,
            "target {target} out of range for size {size}"
        );
        Self {
            size,
            target,
            counter: QueryCounter::new(),
        }
    }

    /// Creates a database whose target is drawn uniformly at random.
    pub fn with_random_target<R: Rng + ?Sized>(size: u64, rng: &mut R) -> Self {
        assert!(size > 0, "database must contain at least one item");
        let target = rng.gen_range(0..size);
        Self::new(size, target)
    }

    /// Number of items `N`.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Classical point query `f(x)`, charged as one oracle query.
    #[inline]
    pub fn query(&self, x: u64) -> bool {
        debug_assert!(x < self.size, "query address {x} out of range");
        self.counter.increment();
        x == self.target
    }

    /// The marked address.
    ///
    /// This is *ground truth* for verification and for constructing the
    /// oracle unitary inside the simulator; it is **not** an oracle query and
    /// is never used by the algorithms to decide anything (they only call
    /// [`Database::query`] / the quantum oracle application).
    #[inline]
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Handle onto the shared query counter.
    pub fn counter(&self) -> &QueryCounter {
        &self.counter
    }

    /// Total queries charged so far (classical probes plus quantum oracle
    /// applications).
    pub fn queries(&self) -> u64 {
        self.counter.total()
    }

    /// Resets the query counter (the target is unchanged).
    pub fn reset_queries(&self) {
        self.counter.reset();
    }

    /// Records `n` quantum oracle applications.
    ///
    /// The state-vector simulator calls this whenever it applies the oracle
    /// transformation `I_t` (or the bit-flip form `T_f`) to a state; one
    /// application of the unitary is one query, as in the query model used by
    /// the paper and by Zalka's lower bound.
    #[inline]
    pub fn charge_quantum_queries(&self, n: u64) {
        self.counter.add(n);
    }
}

/// A partition of the address space `[N]` into `K` equal blocks.
///
/// For `N = 2^n`, `K = 2^k` this is exactly "group addresses by their first
/// `k` bits"; the type also supports non-power-of-two cases such as the
/// twelve-item, three-block example of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    size: u64,
    blocks: u64,
}

impl Partition {
    /// Creates the partition of `[size]` into `blocks` equal blocks.
    ///
    /// # Panics
    /// Panics unless `blocks` divides `size` and both are positive.
    pub fn new(size: u64, blocks: u64) -> Self {
        assert!(
            size > 0 && blocks > 0,
            "partition dimensions must be positive"
        );
        assert!(
            size.is_multiple_of(blocks),
            "number of blocks {blocks} must divide database size {size}"
        );
        Self { size, blocks }
    }

    /// Database size `N`.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of blocks `K`.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Items per block `N / K`.
    #[inline]
    pub fn block_size(&self) -> u64 {
        self.size / self.blocks
    }

    /// The block containing address `x`.
    #[inline]
    pub fn block_of(&self, x: u64) -> u64 {
        bits::split_address(x, self.size, self.blocks).0
    }

    /// The offset of `x` inside its block.
    #[inline]
    pub fn offset_of(&self, x: u64) -> u64 {
        bits::split_address(x, self.size, self.blocks).1
    }

    /// The address range of a block.
    pub fn block_range(&self, block: u64) -> std::ops::Range<u64> {
        bits::block_addresses(block, self.size, self.blocks)
    }

    /// Iterator over all block indices.
    pub fn block_indices(&self) -> std::ops::Range<u64> {
        0..self.blocks
    }

    /// When `N` and `K` are powers of two, the number of address bits asked
    /// for by the partial-search problem (`k = log2 K`); `None` otherwise.
    pub fn bits_requested(&self) -> Option<u32> {
        if bits::is_power_of_two(self.blocks) {
            Some(bits::log2_exact(self.blocks))
        } else {
            None
        }
    }
}

/// The answer to a partial-search instance, paired with the ground truth so
/// experiment drivers can score correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialSearchOutcome {
    /// The block reported by the algorithm.
    pub reported_block: u64,
    /// The block that actually contains the target.
    pub true_block: u64,
    /// Oracle queries consumed.
    pub queries: u64,
}

impl PartialSearchOutcome {
    /// Whether the reported block is correct.
    pub fn is_correct(&self) -> bool {
        self.reported_block == self.true_block
    }
}

/// The answer to a full-search instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FullSearchOutcome {
    /// The address reported by the algorithm.
    pub reported_target: u64,
    /// The true marked address.
    pub true_target: u64,
    /// Oracle queries consumed.
    pub queries: u64,
}

impl FullSearchOutcome {
    /// Whether the reported address is correct.
    pub fn is_correct(&self) -> bool {
        self.reported_target == self.true_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classical_queries_are_counted() {
        let db = Database::new(16, 5);
        assert!(!db.query(0));
        assert!(db.query(5));
        assert!(!db.query(15));
        assert_eq!(db.queries(), 3);
        db.reset_queries();
        assert_eq!(db.queries(), 0);
    }

    #[test]
    fn quantum_charges_accumulate_on_same_counter() {
        let db = Database::new(16, 5);
        db.query(1);
        db.charge_quantum_queries(10);
        assert_eq!(db.queries(), 11);
    }

    #[test]
    fn random_target_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let db = Database::with_random_target(12, &mut rng);
            assert!(db.target() < 12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        Database::new(8, 8);
    }

    #[test]
    fn partition_block_arithmetic() {
        let p = Partition::new(12, 3);
        assert_eq!(p.block_size(), 4);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(7), 1);
        assert_eq!(p.block_of(11), 2);
        assert_eq!(p.offset_of(7), 3);
        assert_eq!(p.block_range(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(p.bits_requested(), None);
        assert_eq!(p.block_indices().count(), 3);
    }

    #[test]
    fn power_of_two_partition_exposes_bit_count() {
        let p = Partition::new(1 << 10, 1 << 3);
        assert_eq!(p.bits_requested(), Some(3));
        assert_eq!(p.block_size(), 128);
        // Block index equals the first three bits of the address.
        for x in [0u64, 127, 128, 511, 1000, 1023] {
            assert_eq!(p.block_of(x), x >> 7);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn partition_requires_equal_blocks() {
        Partition::new(10, 3);
    }

    #[test]
    fn outcome_scoring() {
        let partial = PartialSearchOutcome {
            reported_block: 2,
            true_block: 2,
            queries: 10,
        };
        assert!(partial.is_correct());
        let full = FullSearchOutcome {
            reported_target: 3,
            true_target: 4,
            queries: 2,
        };
        assert!(!full.is_correct());
    }
}
