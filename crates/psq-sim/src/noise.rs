//! Per-query noise channels on the SoA amplitude planes.
//!
//! The ideal simulators evolve pure states under perfect operators. This
//! module adds the simplest production-relevant imperfections as **quantum
//! trajectories**: after each oracle query an independent random event may
//! perturb the state, so averaging many seeded trials samples the channel
//! `ρ → (1−p)ρ + p·E(ρ)` without ever materialising a density matrix.
//!
//! Three channels, each with an independent per-query rate
//! ([`NoiseSpec`]):
//!
//! * **`oracle_fault`** — the oracle call silently does nothing (it is
//!   still charged; the algorithm cannot tell). The rotation falls behind
//!   schedule. Real-preserving: the known-real fast path stays on.
//! * **`depolarizing`** — a total depolarizing event: the state collapses
//!   to a uniformly random computational basis state `|x⟩`. Averaged over
//!   trials this is the trajectory unraveling of
//!   `ρ → (1−p)ρ + p·I/N` per query. Basis states are real, so this too
//!   preserves the real-only plane optimisation.
//! * **`dephasing`** — a random-phase kick `Z_b(θ)` on a uniformly random
//!   address bit `b`: every amplitude whose address has bit `b` set is
//!   multiplied by `e^{iθ}`, `θ ~ U[0, 2π)`. This is the one channel that
//!   leaves the real subspace, so it **clears** the known-real flag and the
//!   kernels degrade gracefully to two-plane sweeps from that point on.
//!
//! # Determinism contract
//!
//! All randomness flows through the caller's RNG in a **fixed draw order**
//! per query — fault decision, then depolarizing decision + collapse
//! target, then dephasing decision + bit + angle — and a rate of exactly
//! `0.0` draws nothing for that channel. Channel application itself is a
//! deterministic elementwise sweep (no reductions), so a noisy run is a
//! pure function of `(spec, seed)` at any thread count, exactly like the
//! ideal kernels.

use crate::statevector::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Per-query noise rates (all probabilities in `[0, 1]`).
///
/// The all-zero spec is **ideal**: callers are expected to route it to the
/// untouched ideal fast path (see [`NoiseSpec::is_ideal`]), which keeps the
/// "p = 0 is bit-identical to no noise at all" contract trivially true.
///
/// `Deserialize` is hand-written: an omitted or `null` rate means `0.0`
/// (the vendored derive would demand every key, making
/// `{"depolarizing":0.05}` a parse error), and unknown keys are rejected so
/// a typo like `"depol"` fails loudly instead of silently running ideal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct NoiseSpec {
    /// Probability per query of a total depolarizing event (collapse to a
    /// uniformly random basis state).
    pub depolarizing: f64,
    /// Probability per query of a random-phase kick on a random address
    /// bit. The only channel that forces complex amplitudes.
    pub dephasing: f64,
    /// Probability per query that the oracle call silently fails (still
    /// charged).
    pub oracle_fault: f64,
}

impl serde::Deserialize for NoiseSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let object = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for NoiseSpec"))?;
        fn rate(object: &serde::Map, key: &'static str) -> Result<f64, serde::Error> {
            match object.get(key) {
                None | Some(serde::Value::Null) => Ok(0.0),
                Some(value) => f64::deserialize(value).map_err(|e| e.in_field(key)),
            }
        }
        for (key, _) in object.iter() {
            if !matches!(key.as_str(), "depolarizing" | "dephasing" | "oracle_fault") {
                return Err(serde::Error::custom(format!(
                    "noise: unknown field {key:?} (expected depolarizing, dephasing, oracle_fault)"
                )));
            }
        }
        Ok(Self {
            depolarizing: rate(object, "depolarizing")?,
            dephasing: rate(object, "dephasing")?,
            oracle_fault: rate(object, "oracle_fault")?,
        })
    }
}

impl NoiseSpec {
    /// The ideal (all-zero) spec.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A spec with only a faulty-oracle rate (the original
    /// `psq_partial::robustness` fault model).
    pub fn oracle_only(p: f64) -> Self {
        Self {
            oracle_fault: p,
            ..Self::default()
        }
    }

    /// Whether every rate is exactly zero (route to the ideal fast path).
    pub fn is_ideal(&self) -> bool {
        self.depolarizing == 0.0 && self.dephasing == 0.0 && self.oracle_fault == 0.0
    }

    /// Whether this spec can push the state off the real subspace (only
    /// dephasing does; oracle faults and depolarizing collapses are real).
    pub fn forces_complex(&self) -> bool {
        self.dephasing > 0.0
    }

    /// Validates every rate is a probability.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("depolarizing", self.depolarizing),
            ("dephasing", self.dephasing),
            ("oracle_fault", self.oracle_fault),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("noise.{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// The three rates as stable bit patterns, for hashing into cache and
    /// routing keys (callers include these **only** for non-ideal specs, so
    /// `noise: null`, a missing field and an explicit all-zero spec all
    /// share one identity).
    pub fn key_words(&self) -> [u64; 3] {
        [
            self.depolarizing.to_bits(),
            self.dephasing.to_bits(),
            self.oracle_fault.to_bits(),
        ]
    }

    /// Draws one query's noise events (decisions **and** parameters) in the
    /// fixed documented order. `n` is the state dimension the events will
    /// apply to. Channels at rate exactly `0.0` consume no randomness.
    pub fn draw_query<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> QueryNoise {
        let faulty = self.oracle_fault > 0.0 && rng.gen_bool(self.oracle_fault);
        let depolarize = (self.depolarizing > 0.0 && rng.gen_bool(self.depolarizing))
            .then(|| rng.gen_range(0..n));
        let dephase = (self.dephasing > 0.0 && rng.gen_bool(self.dephasing)).then(|| {
            let bits = (64 - (n - 1).leading_zeros()).max(1);
            (
                rng.gen_range(0..bits),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        });
        QueryNoise {
            faulty,
            depolarize,
            dephase,
        }
    }
}

/// The noise events drawn for one oracle query: the fault decision plus any
/// channel events to apply after the query's iteration completes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryNoise {
    /// The oracle call silently fails (still charged).
    pub faulty: bool,
    /// Collapse to this basis state after the iteration.
    pub depolarize: Option<u64>,
    /// Phase kick `(address bit, angle)` after the iteration.
    pub dephase: Option<(u32, f64)>,
}

impl QueryNoise {
    /// Whether this query is completely clean — no fault, no channel event —
    /// so it can join a fused iteration run.
    pub fn is_clean(&self) -> bool {
        !self.faulty && self.depolarize.is_none() && self.dephase.is_none()
    }
}

/// Applies the channel events of one drawn query to the state (the fault
/// decision is the caller's to honour at oracle-call time).
///
/// Events are deterministic elementwise sweeps: a depolarizing collapse
/// rewrites the planes to the basis state (and **keeps** the known-real
/// flag on), a dephasing kick rotates every amplitude whose address has the
/// drawn bit set (and clears the flag, materialising the imaginary plane).
pub fn apply_channels(psi: &mut StateVector, noise: &QueryNoise) {
    if let Some(target) = noise.depolarize {
        collapse_to_basis(psi, target as usize);
    }
    if let Some((bit, theta)) = noise.dephase {
        phase_kick(psi, bit, theta);
    }
}

/// Collapse to `|index⟩` in place (real-preserving).
fn collapse_to_basis(psi: &mut StateVector, index: usize) {
    assert!(index < psi.len(), "collapse target out of range");
    let was_real = psi.is_real_only();
    let (re, im) = psi.planes_mut_raw();
    re.fill(0.0);
    re[index] = 1.0;
    if !was_real {
        im.fill(0.0);
    }
    psi.set_real_only(true);
}

/// Multiplies every amplitude whose address has `bit` set by `e^{iθ}`.
fn phase_kick(psi: &mut StateVector, bit: u32, theta: f64) {
    let (cos, sin) = (theta.cos(), theta.sin());
    let was_real = psi.is_real_only();
    let (re, im) = psi.planes_mut_raw();
    if was_real {
        im.fill(0.0);
    }
    for x in 0..re.len() {
        if (x >> bit) & 1 == 1 {
            let (r, i) = (re[x], im[x]);
            re[x] = r * cos - i * sin;
            im[x] = r * sin + i * cos;
        }
    }
    psi.set_real_only(false);
}

/// A self-contained noise source: a [`NoiseSpec`] plus an owned seeded RNG,
/// for callers that want the noise stream decoupled from any other
/// randomness they consume.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    spec: NoiseSpec,
    rng: StdRng,
}

impl NoiseModel {
    /// A model drawing from its own `StdRng` seeded with `seed`.
    pub fn new(spec: NoiseSpec, seed: u64) -> Self {
        Self {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured rates.
    pub fn spec(&self) -> NoiseSpec {
        self.spec
    }

    /// Draws the next query's events from the owned stream.
    pub fn draw_query(&mut self, n: u64) -> QueryNoise {
        self.spec.draw_query(n, &mut self.rng)
    }

    /// Applies a drawn query's channel events to the state.
    pub fn apply_channels(&self, psi: &mut StateVector, noise: &QueryNoise) {
        apply_channels(psi, noise);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn validate_accepts_probabilities_and_rejects_everything_else() {
        assert!(NoiseSpec::ideal().validate().is_ok());
        assert!(NoiseSpec {
            depolarizing: 1.0,
            dephasing: 0.5,
            oracle_fault: 0.0,
        }
        .validate()
        .is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(NoiseSpec::oracle_only(bad).validate().is_err());
            assert!(NoiseSpec {
                depolarizing: bad,
                ..NoiseSpec::ideal()
            }
            .validate()
            .is_err());
        }
    }

    #[test]
    fn ideal_spec_draws_nothing_and_consumes_no_randomness() {
        let mut a = NoiseModel::new(NoiseSpec::ideal(), 1);
        let mut b = NoiseModel::new(NoiseSpec::ideal(), 2);
        for _ in 0..8 {
            let qa = a.draw_query(1024);
            assert!(qa.is_clean());
            assert_eq!(qa, b.draw_query(1024), "no channel draws at rate zero");
        }
        assert!(NoiseSpec::ideal().is_ideal());
        assert!(!NoiseSpec::oracle_only(0.01).is_ideal());
    }

    #[test]
    fn draws_are_a_pure_function_of_spec_and_seed() {
        let spec = NoiseSpec {
            depolarizing: 0.3,
            dephasing: 0.3,
            oracle_fault: 0.3,
        };
        let mut a = NoiseModel::new(spec, 42);
        let mut b = NoiseModel::new(spec, 42);
        let qa: Vec<QueryNoise> = (0..64).map(|_| a.draw_query(300)).collect();
        let qb: Vec<QueryNoise> = (0..64).map(|_| b.draw_query(300)).collect();
        assert_eq!(qa, qb);
        assert!(qa.iter().any(|q| q.faulty));
        assert!(qa.iter().any(|q| q.depolarize.is_some()));
        assert!(qa.iter().any(|q| q.dephase.is_some()));
        // Every drawn collapse target is in range.
        for q in &qa {
            if let Some(t) = q.depolarize {
                assert!(t < 300);
            }
        }
    }

    #[test]
    fn depolarizing_collapse_is_a_real_basis_state() {
        let mut psi = StateVector::uniform(32);
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: Some(7),
                dephase: None,
            },
        );
        assert!(psi.is_real_only(), "collapse preserves the real fast path");
        assert_close(psi.probability(7), 1.0, 1e-15);
        assert_close(psi.norm_sqr(), 1.0, 1e-15);
    }

    #[test]
    fn dephasing_kick_forces_complex_and_preserves_the_norm() {
        let mut psi = StateVector::uniform(32);
        assert!(psi.is_real_only());
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: None,
                dephase: Some((2, 1.2)),
            },
        );
        assert!(!psi.is_real_only(), "phase kicks leave the real subspace");
        assert!(psi.max_imaginary_part() > 1e-3);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
        // Addresses with bit 2 clear are untouched.
        let amp = 1.0 / 32f64.sqrt();
        assert_close(psi.amplitude(1).re, amp, 1e-15);
        assert_close(psi.amplitude(1).im, 0.0, 1e-15);
        // Addresses with bit 2 set are rotated by exactly θ.
        assert_close(psi.amplitude(4).re, amp * 1.2f64.cos(), 1e-15);
        assert_close(psi.amplitude(4).im, amp * 1.2f64.sin(), 1e-15);
    }

    #[test]
    fn phase_kick_on_a_complex_state_composes_rotations() {
        let mut psi = StateVector::uniform(16);
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: None,
                dephase: Some((0, 0.7)),
            },
        );
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: None,
                dephase: Some((0, 0.5)),
            },
        );
        let amp = 0.25;
        assert_close(psi.amplitude(1).re, amp * 1.2f64.cos(), 1e-12);
        assert_close(psi.amplitude(1).im, amp * 1.2f64.sin(), 1e-12);
        assert_close(psi.norm_sqr(), 1.0, 1e-12);
    }

    #[test]
    fn collapse_after_dephasing_restores_the_real_fast_path() {
        let mut psi = StateVector::uniform(16);
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: None,
                dephase: Some((1, 2.0)),
            },
        );
        assert!(!psi.is_real_only());
        apply_channels(
            &mut psi,
            &QueryNoise {
                faulty: false,
                depolarize: Some(3),
                dephase: None,
            },
        );
        assert!(psi.is_real_only());
        assert_close(psi.probability(3), 1.0, 1e-15);
        assert_close(psi.max_imaginary_part(), 0.0, 1e-15);
    }

    #[test]
    fn spec_round_trips_and_key_words_are_stable_bits() {
        let spec = NoiseSpec {
            depolarizing: 0.125,
            dephasing: 0.0,
            oracle_fault: 0.5,
        };
        assert_eq!(
            spec.key_words(),
            [0.125f64.to_bits(), 0.0f64.to_bits(), 0.5f64.to_bits()]
        );
        let json = serde_json::to_string(&spec).unwrap();
        let back: NoiseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn partial_noise_objects_parse_with_zero_defaults() {
        let spec: NoiseSpec = serde_json::from_str(r#"{"depolarizing":0.05}"#).unwrap();
        assert_eq!(
            spec,
            NoiseSpec {
                depolarizing: 0.05,
                ..NoiseSpec::ideal()
            }
        );
        let spec: NoiseSpec =
            serde_json::from_str(r#"{"oracle_fault":0.1,"dephasing":null}"#).unwrap();
        assert_eq!(spec, NoiseSpec::oracle_only(0.1));
        assert!(serde_json::from_str::<NoiseSpec>(r#"{}"#)
            .unwrap()
            .is_ideal());
        // Typos fail loudly instead of silently running ideal.
        assert!(serde_json::from_str::<NoiseSpec>(r#"{"depol":0.05}"#).is_err());
        assert!(serde_json::from_str::<NoiseSpec>(r#"[0.05]"#).is_err());
    }
}
