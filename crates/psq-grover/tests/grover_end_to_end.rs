//! End-to-end and property-based tests for the Grover crate.
//!
//! These cross the module boundaries inside `psq-grover`: schedules drive the
//! simulators, the simulators are checked against the closed-form theory, and
//! proptest sweeps database sizes and targets.

use proptest::prelude::*;
use psq_grover::{exact, iteration::Schedule, standard, theory};
use psq_sim::oracle::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn statevector_matches_theory_across_iteration_counts() {
    let n = 300u64;
    let db = Database::new(n, 123);
    for iters in [0u64, 1, 3, 7, 11, 13] {
        db.reset_queries();
        let psi = standard::final_state(&db, iters);
        let predicted = theory::success_probability(n as f64, iters);
        assert!(
            (psi.probability(123) - predicted).abs() < 1e-9,
            "iters = {iters}"
        );
        assert_eq!(db.queries(), iters);
    }
}

#[test]
fn verified_and_exact_search_are_both_zero_error() {
    let mut rng = StdRng::seed_from_u64(2024);
    for n in [60u64, 144, 500] {
        let db = Database::new(n, n / 3);
        let verified = standard::search_verified(&db, 8, &mut rng);
        assert!(verified.is_correct());

        let db2 = Database::new(n, n - 1);
        let exact = exact::search_exact_statevector(&db2, &mut rng);
        assert!(exact.is_correct());
        // The sure-success variant uses only constantly more queries than the
        // plain optimal schedule.
        let optimal = Schedule::optimal(n as f64).iterations;
        assert!(exact.queries <= optimal + 5);
    }
}

#[test]
fn truncated_schedule_leaves_the_paper_claimed_angle() {
    // Step 1 of partial search stops ε·(π/4)√N iterations short; the angle
    // left to the target should then be ≈ (π/2)·ε.
    let n = (1u64 << 18) as f64;
    for &eps in &[0.05, 0.1, 0.3, 0.5, 0.8] {
        let s = Schedule::truncated(n, eps);
        let expected = std::f64::consts::FRAC_PI_2 * eps;
        assert!(
            (s.angle_from_target - expected).abs() < 0.02,
            "eps = {eps}: angle {} vs expected {expected}",
            s.angle_from_target
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_final_state_stays_normalised_and_real(
        n in 8u64..400,
        target_frac in 0.0f64..1.0,
        iters in 0u64..20,
    ) {
        let target = ((n as f64 - 1.0) * target_frac).round() as u64;
        let db = Database::new(n, target);
        let psi = standard::final_state(&db, iters);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
        prop_assert!(psi.max_imaginary_part() < 1e-12);
        prop_assert!((psi.probability(target as usize)
            - theory::success_probability(n as f64, iters)).abs() < 1e-8);
    }

    #[test]
    fn prop_reduced_simulator_matches_closed_form(
        exponent in 3u32..40,
        iters in 0u64..50,
    ) {
        let n = (1u64 << exponent) as f64;
        let report = standard::search_reduced(n, iters);
        prop_assert!((report.success_probability
            - theory::success_probability(n, iters)).abs() < 1e-9);
        prop_assert_eq!(report.queries, iters);
    }

    #[test]
    fn prop_optimal_schedule_is_near_pi_over_4_sqrt_n(exponent in 4u32..50) {
        let n = (1u64 << exponent) as f64;
        let s = Schedule::optimal(n);
        let ideal = theory::full_search_queries(n);
        prop_assert!((s.iterations as f64 - ideal).abs() <= 1.0);
        prop_assert!(s.success_probability > 1.0 - 4.0 / n);
    }

    #[test]
    fn prop_exact_plan_always_reaches_certainty(n in 8u64..3000) {
        let p = exact::plan(n as f64);
        prop_assert!(p.predicted_failure < 1e-10);
        prop_assert!(p.iterations <= Schedule::optimal(n as f64).iterations + 5);
    }
}
