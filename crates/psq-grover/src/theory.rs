//! Closed-form query-complexity facts for standard Grover search.
//!
//! These are the quantities Section 2.1 of the paper takes as known: the
//! rotation-angle picture of amplitude amplification, the optimal iteration
//! count `≈ (π/4)√N`, and the exact success probability after any number of
//! iterations.  The algorithm crates use them to *predict* what the
//! simulators should produce, and the tests close the loop by asserting that
//! prediction and simulation agree.

use psq_math::angle::{grover_angle, grover_angle_multi};

/// The coefficient of `√N` in the optimal full-search query count: `π/4`.
pub const QUERY_COEFFICIENT: f64 = std::f64::consts::FRAC_PI_4;

/// Queries used by optimal Grover search on a size-`n` database, as the
/// asymptotic expression `(π/4)√n`.
pub fn full_search_queries(n: f64) -> f64 {
    QUERY_COEFFICIENT * n.sqrt()
}

/// Amplitude of the target state after `iters` standard Grover iterations on
/// a size-`n` database with one marked item: `sin((2·iters + 1)·θ)` where
/// `sin θ = 1/√n`.
pub fn target_amplitude_after(n: f64, iters: u64) -> f64 {
    let theta = grover_angle(n);
    ((2 * iters + 1) as f64 * theta).sin()
}

/// Amplitude of each *non-target* state after `iters` iterations:
/// `cos((2·iters + 1)·θ) / √(n − 1)`.
pub fn rest_amplitude_after(n: f64, iters: u64) -> f64 {
    let theta = grover_angle(n);
    ((2 * iters + 1) as f64 * theta).cos() / (n - 1.0).sqrt()
}

/// Success probability after `iters` iterations (single marked item).
pub fn success_probability(n: f64, iters: u64) -> f64 {
    target_amplitude_after(n, iters).powi(2)
}

/// Success probability after `iters` iterations when `m` of the `n` items are
/// marked: `sin²((2·iters + 1)·θ_m)` with `sin θ_m = √(m/n)`.
pub fn success_probability_multi(n: f64, m: f64, iters: u64) -> f64 {
    let theta = grover_angle_multi(n, m);
    ((2 * iters + 1) as f64 * theta).sin().powi(2)
}

/// Optimal iteration count for `m` marked items out of `n`:
/// `round(π/(4θ_m) − 1/2)`.
pub fn optimal_iterations_multi(n: f64, m: f64) -> u64 {
    let theta = grover_angle_multi(n, m);
    assert!(theta > 0.0, "need at least one marked item");
    ((std::f64::consts::FRAC_PI_2 / (2.0 * theta)) - 0.5)
        .round()
        .max(0.0) as u64
}

/// The angle (measured from the *target*) of the state after `iters`
/// iterations: `π/2 − (2·iters + 1)·θ`.
///
/// The paper's Step-1 analysis writes the post-Step-1 state as
/// `cos(θ)|t⟩ + (sin(θ)/√N)Σ|x⟩`; this function returns that `θ` for a given
/// iteration count.  Negative values mean the rotation has overshot the
/// target — the drift the paper calls "crucial for our general partial search
/// algorithm".
pub fn angle_from_target_after(n: f64, iters: u64) -> f64 {
    let theta = grover_angle(n);
    std::f64::consts::FRAC_PI_2 - (2 * iters + 1) as f64 * theta
}

/// Expected oracle queries of the "run optimal Grover, measure, verify with
/// one classical query, repeat on failure" zero-error (Las Vegas) procedure.
///
/// Each attempt costs `j* + 1` queries and succeeds with probability
/// `p* = sin²((2j*+1)θ) = 1 − O(1/N)`, so the expectation is
/// `(j* + 1)/p*`.
pub fn verified_search_expected_queries(n: f64) -> f64 {
    let j = psq_math::angle::optimal_grover_iterations(n);
    let p = success_probability(n, j);
    (j as f64 + 1.0) / p
}

/// Success probability of the classical strategy that simply probes `q`
/// uniformly random distinct locations of a size-`n` database.
pub fn classical_success_probability(n: f64, q: f64) -> f64 {
    (q / n).clamp(0.0, 1.0)
}

/// The quadratic advantage factor: classical expected queries `n/2` divided
/// by quantum queries `(π/4)√n`.
pub fn quantum_speedup(n: f64) -> f64 {
    (n / 2.0) / full_search_queries(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn n4_single_iteration_is_exact() {
        assert_close(success_probability(4.0, 1), 1.0, 1e-12);
        assert_close(target_amplitude_after(4.0, 1), 1.0, 1e-12);
        assert_close(rest_amplitude_after(4.0, 1).abs(), 0.0, 1e-12);
    }

    #[test]
    fn optimal_iterations_give_near_certain_success() {
        for &n in &[64.0, 1024.0, 1e6, 1e12] {
            let j = psq_math::angle::optimal_grover_iterations(n);
            assert!(success_probability(n, j) > 1.0 - 2.0 / n);
        }
    }

    #[test]
    fn query_coefficient_matches_iteration_count() {
        let n = 1e10;
        let j = psq_math::angle::optimal_grover_iterations(n) as f64;
        assert!((j - full_search_queries(n)).abs() < 1.0);
    }

    #[test]
    fn overshoot_reduces_success_probability() {
        let n = 4096.0;
        let j = psq_math::angle::optimal_grover_iterations(n);
        let p_opt = success_probability(n, j);
        let p_over = success_probability(n, j + 8);
        assert!(p_over < p_opt);
        assert!(angle_from_target_after(n, j + 8) < 0.0);
        assert!(angle_from_target_after(n, j / 2) > 0.0);
    }

    #[test]
    fn multi_marked_reduces_iteration_count() {
        let n = 1 << 20;
        let one = optimal_iterations_multi(n as f64, 1.0);
        let four = optimal_iterations_multi(n as f64, 4.0);
        // With m marked items the count shrinks by ~√m.
        assert!((four as f64 - one as f64 / 2.0).abs() < 2.0);
        assert!(success_probability_multi(n as f64, 4.0, four) > 0.999);
    }

    #[test]
    fn verified_search_costs_barely_more_than_plain_grover() {
        let n = 1e8;
        let expected = verified_search_expected_queries(n);
        let plain = full_search_queries(n);
        assert!(expected >= plain * 0.99);
        assert!(expected <= plain + 3.0);
    }

    #[test]
    fn speedup_grows_like_sqrt_n() {
        let s1 = quantum_speedup(1e6);
        let s2 = quantum_speedup(4e6);
        assert_close(s2 / s1, 2.0, 1e-9);
    }

    #[test]
    fn classical_probability_is_linear_and_clamped() {
        assert_close(classical_success_probability(100.0, 25.0), 0.25, 1e-15);
        assert_close(classical_success_probability(100.0, 200.0), 1.0, 1e-15);
    }
}
