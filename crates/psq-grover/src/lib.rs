//! Standard quantum database search (Grover's algorithm) and its variants.
//!
//! This crate implements the baseline against which the paper's partial
//! search algorithm is measured, in five layers:
//!
//! * [`theory`] — closed-form facts: the `(π/4)√N` query count, exact success
//!   probabilities, multi-target generalisations, and the overshoot behaviour
//!   that partial search exploits.
//! * [`iteration`] — iteration-count scheduling, including the paper's
//!   truncated Step-1 schedule `ℓ1(ε) = (π/4)(1 − ε)√N`.
//! * [`standard`] — runnable searches on the state-vector and reduced
//!   simulators: bounded-error, zero-error (Las Vegas verified), and exact
//!   final-state extraction for the figures and lower bounds.
//! * [`exact`] — the sure-success variant via phase matching (Long), used to
//!   justify the paper's "can be modified to return the correct answer with
//!   certainty".
//! * [`amplitude_amplification`] — the generalised machinery (marked sets,
//!   reflections about arbitrary states) that both the global Step 1 and the
//!   per-block Step 2 of partial search specialise.

pub mod amplitude_amplification;
pub mod exact;
pub mod iteration;
pub mod standard;
pub mod theory;

pub use amplitude_amplification::{amplify, reflect_about_state, MarkedSet};
pub use exact::{plan as exact_plan, search_exact_statevector, ExactPlan};
pub use iteration::Schedule;
pub use standard::{
    final_state, search_reduced, search_reduced_optimal, search_statevector,
    search_statevector_optimal, search_verified, ReducedSearchReport,
};
pub use theory::{full_search_queries, success_probability, QUERY_COEFFICIENT};
