//! Generalised amplitude amplification.
//!
//! Section 2 of the paper frames both its Step 1 (global amplification) and
//! its Step 2 (per-block amplification) as "judicious combinations of
//! amplitude amplification steps".  This module provides the general
//! machinery those steps specialise: reflections about an arbitrary marked
//! *set* of addresses and about an arbitrary reference state, and the
//! composite amplification loop with its multi-target iteration theory.

use crate::theory;
use psq_sim::oracle::Database;
use psq_sim::query_counter::QueryCounter;
use psq_sim::statevector::StateVector;
use rand::Rng;

/// A set of marked addresses with its own instrumented query counter.
///
/// [`Database`] models the paper's promise of a *unique* marked item; the
/// generalised amplification machinery (and the multi-target sanity checks in
/// the test suite) need the `m ≥ 1` generalisation.
#[derive(Clone, Debug)]
pub struct MarkedSet {
    n: usize,
    marked: Vec<usize>,
    counter: QueryCounter,
}

impl MarkedSet {
    /// Creates a marked set over a database of `n` items.
    ///
    /// # Panics
    /// Panics if the set is empty or any index is out of range.
    pub fn new(n: usize, mut marked: Vec<usize>) -> Self {
        assert!(!marked.is_empty(), "marked set must be non-empty");
        marked.sort_unstable();
        marked.dedup();
        assert!(
            *marked.last().expect("non-empty") < n,
            "marked index out of range"
        );
        Self {
            n,
            marked,
            counter: QueryCounter::new(),
        }
    }

    /// Wraps the unique marked item of a [`Database`] (sharing *its* counter
    /// is not possible, so a fresh counter is used; callers who need the
    /// database's own accounting should drive the database directly).
    pub fn from_database(db: &Database) -> Self {
        Self::new(db.size() as usize, vec![db.target() as usize])
    }

    /// Database size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of marked items `m`.
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The marked indices, sorted.
    pub fn marked(&self) -> &[usize] {
        &self.marked
    }

    /// Whether `x` is marked (no query charged; this is ground truth used by
    /// experiment drivers for scoring).
    pub fn contains(&self, x: usize) -> bool {
        self.marked.binary_search(&x).is_ok()
    }

    /// Classical point query, charged as one oracle query.
    pub fn query(&self, x: usize) -> bool {
        self.counter.increment();
        self.contains(x)
    }

    /// Total queries charged (classical plus quantum).
    pub fn queries(&self) -> u64 {
        self.counter.total()
    }

    /// Resets the counter.
    pub fn reset_queries(&self) {
        self.counter.reset();
    }

    /// Applies the oracle reflection `I − 2 Σ_{x marked} |x⟩⟨x|`, charging one
    /// query.
    pub fn reflect(&self, state: &mut StateVector) {
        assert_eq!(
            state.len(),
            self.n,
            "state dimension must match the marked set"
        );
        self.counter.increment();
        for &x in &self.marked {
            state.phase_flip_unchecked(x);
        }
    }

    /// Probability that a measurement of `state` yields a marked item.
    pub fn success_probability(&self, state: &StateVector) -> f64 {
        self.marked.iter().map(|&x| state.probability(x)).sum()
    }
}

/// Reflects `state` about an arbitrary reference state:
/// `|ψ⟩ ↦ 2⟨χ|ψ⟩|χ⟩ − |ψ⟩`.
///
/// With `χ = |ψ0⟩` this is the global diffusion; the partial-search Step 2
/// uses the block-wise analogue.
pub fn reflect_about_state(state: &mut StateVector, reference: &StateVector) {
    assert_eq!(state.len(), reference.len(), "dimension mismatch");
    let overlap = reference.inner_product(state);
    let twice = overlap * 2.0;
    // Capturing the reference by shared borrow keeps the kernel allocation
    // free; amplitudes are read per index inside the parallel chunks.
    state.for_each_amplitude(|i, z| {
        *z = twice * reference.amplitude(i) - *z;
    });
}

/// One generalised amplitude-amplification iteration: oracle reflection over
/// the marked set followed by reflection about the initial state.
pub fn amplification_iteration(state: &mut StateVector, marked: &MarkedSet, initial: &StateVector) {
    marked.reflect(state);
    reflect_about_state(state, initial);
}

/// Runs `iterations` amplification steps starting from `initial`.
pub fn amplify(marked: &MarkedSet, initial: &StateVector, iterations: u64) -> StateVector {
    let mut state = initial.clone();
    for _ in 0..iterations {
        amplification_iteration(&mut state, marked, initial);
    }
    state
}

/// Searches for *any* marked item starting from the uniform superposition,
/// using the optimal multi-target iteration count, then measures.
///
/// Returns the sampled index and the number of queries charged.
pub fn search_any_marked<R: Rng + ?Sized>(marked: &MarkedSet, rng: &mut R) -> (usize, u64) {
    let span = marked.counter.span();
    let iterations =
        theory::optimal_iterations_multi(marked.n as f64, marked.marked_count() as f64);
    let initial = StateVector::uniform(marked.n);
    let state = amplify(marked, &initial, iterations);
    let index = psq_sim::measure::sample_index(&state, rng);
    (index, span.elapsed())
}

/// The amplitude of the (normalised) marked component after `iterations`
/// amplification steps, predicted by the rotation picture.
pub fn predicted_marked_probability(n: f64, m: f64, iterations: u64) -> f64 {
    theory::success_probability_multi(n, m, iterations)
}

#[derive(Clone, Copy, Debug, PartialEq)]
/// Amplitudes `(marked component, unmarked component)` used by the rotation
/// decomposition of amplitude amplification.
pub struct TwoDimDecomposition {
    /// Norm of the projection onto the marked subspace.
    pub marked_norm: f64,
    /// Norm of the projection onto the unmarked subspace.
    pub unmarked_norm: f64,
}

/// Projects a state onto the marked/unmarked decomposition.
pub fn decompose(state: &StateVector, marked: &MarkedSet) -> TwoDimDecomposition {
    let marked_prob = marked.success_probability(state);
    TwoDimDecomposition {
        marked_norm: marked_prob.sqrt(),
        unmarked_norm: (1.0 - marked_prob).max(0.0).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_marked_reduces_to_standard_grover() {
        let n = 256usize;
        let marked = MarkedSet::new(n, vec![17]);
        let initial = StateVector::uniform(n);
        let iters = theory::optimal_iterations_multi(n as f64, 1.0);
        let state = amplify(&marked, &initial, iters);
        assert_close(
            state.probability(17),
            theory::success_probability(n as f64, iters),
            1e-10,
        );
        assert_eq!(marked.queries(), iters);
    }

    #[test]
    fn multi_marked_amplification_matches_theory() {
        let n = 1024usize;
        let marked = MarkedSet::new(n, vec![3, 77, 500, 1023]);
        let initial = StateVector::uniform(n);
        for iters in [1u64, 4, 8] {
            let state = amplify(&marked, &initial, iters);
            assert_close(
                marked.success_probability(&state),
                predicted_marked_probability(n as f64, 4.0, iters),
                1e-9,
            );
        }
    }

    #[test]
    fn search_any_marked_finds_a_marked_item() {
        let mut rng = StdRng::seed_from_u64(3);
        let marked = MarkedSet::new(4096, vec![1, 2000, 4000]);
        for _ in 0..5 {
            let (found, queries) = search_any_marked(&marked, &mut rng);
            assert!(marked.contains(found));
            assert!(queries > 0);
        }
    }

    #[test]
    fn reflect_about_uniform_equals_invert_about_mean() {
        let db = Database::new(64, 9);
        let mut a = StateVector::uniform(64);
        let mut b = StateVector::uniform(64);
        a.apply_oracle_phase_flip(&db);
        b.apply_oracle_phase_flip(&db);
        a.invert_about_mean();
        let uniform = StateVector::uniform(64);
        reflect_about_state(&mut b, &uniform);
        for i in 0..64 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn reflect_about_state_is_an_involution() {
        let reference = StateVector::uniform(32);
        let db = Database::new(32, 4);
        let mut state = StateVector::uniform(32);
        state.grover_iteration(&db);
        let original = state.clone();
        reflect_about_state(&mut state, &reference);
        reflect_about_state(&mut state, &reference);
        for i in 0..32 {
            assert!((state.amplitude(i) - original.amplitude(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn decomposition_norms_are_pythagorean() {
        let marked = MarkedSet::new(128, vec![0, 1, 2, 3]);
        let initial = StateVector::uniform(128);
        let state = amplify(&marked, &initial, 3);
        let d = decompose(&state, &marked);
        assert_close(d.marked_norm.powi(2) + d.unmarked_norm.powi(2), 1.0, 1e-10);
    }

    #[test]
    fn marked_set_deduplicates_and_sorts() {
        let m = MarkedSet::new(16, vec![5, 3, 5, 3, 9]);
        assert_eq!(m.marked(), &[3, 5, 9]);
        assert_eq!(m.marked_count(), 3);
        assert!(m.contains(9));
        assert!(!m.contains(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_marked_set_is_rejected() {
        MarkedSet::new(8, vec![]);
    }

    #[test]
    fn classical_queries_are_charged() {
        let m = MarkedSet::new(8, vec![2]);
        assert!(!m.query(1));
        assert!(m.query(2));
        assert_eq!(m.queries(), 2);
        m.reset_queries();
        assert_eq!(m.queries(), 0);
    }

    #[test]
    fn from_database_marks_the_target() {
        let db = Database::new(32, 30);
        let m = MarkedSet::from_database(&db);
        assert_eq!(m.marked(), &[30]);
        assert_eq!(m.n(), 32);
    }
}
