//! Standard Grover database search, executed on the simulators.
//!
//! Three runners are provided:
//!
//! * [`search_statevector`] — the textbook algorithm on the full state-vector
//!   simulator: prepare `|ψ0⟩`, iterate `A = I_0·I_t`, measure.  Bounded
//!   error `O(1/N)`.
//! * [`search_verified`] — the zero-error (Las Vegas) wrapper: measure, spend
//!   one classical query verifying the outcome, repeat on failure.  Never
//!   returns a wrong address.
//! * [`search_reduced`] — the same dynamics on the block-symmetric reduced
//!   simulator, for databases far too large to materialise; returns the exact
//!   success probability instead of a sampled outcome.

use crate::iteration::Schedule;
use psq_sim::measure;
use psq_sim::oracle::{Database, FullSearchOutcome};
use psq_sim::reduced::ReducedState;
use psq_sim::statevector::StateVector;
use rand::Rng;

/// Outcome of a run on the reduced simulator, where the full probability
/// distribution is known exactly rather than sampled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReducedSearchReport {
    /// Database size `N`.
    pub n: f64,
    /// Iterations performed.
    pub iterations: u64,
    /// Oracle queries charged (equals `iterations` for standard search).
    pub queries: u64,
    /// Probability that a measurement would return the target.
    pub success_probability: f64,
}

/// Runs `iterations` standard Grover iterations on the state-vector simulator
/// and measures once.
///
/// The returned outcome records the sampled address, the true target, and the
/// exact number of oracle queries charged.
pub fn search_statevector<R: Rng + ?Sized>(
    db: &Database,
    iterations: u64,
    rng: &mut R,
) -> FullSearchOutcome {
    let n = db.size() as usize;
    let span = db.counter().span();
    let mut psi = StateVector::uniform(n);
    for _ in 0..iterations {
        psi.grover_iteration(db);
    }
    let reported = measure::sample_index(&psi, rng) as u64;
    FullSearchOutcome {
        reported_target: reported,
        true_target: db.target(),
        queries: span.elapsed(),
    }
}

/// Runs the optimal number of iterations and measures once.
pub fn search_statevector_optimal<R: Rng + ?Sized>(
    db: &Database,
    rng: &mut R,
) -> FullSearchOutcome {
    let schedule = Schedule::optimal(db.size() as f64);
    search_statevector(db, schedule.iterations, rng)
}

/// The final state (not a sample) after `iterations` Grover iterations; used
/// by the figures and by the lower-bound machinery, which need amplitudes
/// rather than measurement outcomes.
pub fn final_state(db: &Database, iterations: u64) -> StateVector {
    let mut psi = StateVector::uniform(db.size() as usize);
    for _ in 0..iterations {
        psi.grover_iteration(db);
    }
    psi
}

/// Zero-error (Las Vegas) search: run optimal Grover, measure, verify the
/// measured address with one classical query, and repeat the whole procedure
/// until verification succeeds.
///
/// The returned address is always correct; the price is that the query count
/// is a random variable with expectation
/// [`crate::theory::verified_search_expected_queries`].
///
/// # Panics
/// Panics if verification has not succeeded after `max_attempts` rounds
/// (with the default schedule the failure probability per round is `O(1/N)`,
/// so this fires only on a simulator bug).
pub fn search_verified<R: Rng + ?Sized>(
    db: &Database,
    max_attempts: u32,
    rng: &mut R,
) -> FullSearchOutcome {
    let span = db.counter().span();
    let schedule = Schedule::optimal(db.size() as f64);
    for _ in 0..max_attempts {
        let mut psi = StateVector::uniform(db.size() as usize);
        for _ in 0..schedule.iterations {
            psi.grover_iteration(db);
        }
        let candidate = measure::sample_index(&psi, rng) as u64;
        // One classical query to check the candidate; only a verified address
        // is ever reported, so the algorithm never errs.
        if db.query(candidate) {
            return FullSearchOutcome {
                reported_target: candidate,
                true_target: db.target(),
                queries: span.elapsed(),
            };
        }
    }
    panic!("verified Grover search failed {max_attempts} consecutive attempts; this indicates a simulator bug");
}

/// Runs `iterations` Grover iterations on the reduced simulator.
pub fn search_reduced(n: f64, iterations: u64) -> ReducedSearchReport {
    let mut state = ReducedState::uniform(n, 1.0);
    state.grover_iterations(iterations);
    ReducedSearchReport {
        n,
        iterations,
        queries: state.queries(),
        success_probability: state.target_probability(),
    }
}

/// Runs the optimal number of iterations on the reduced simulator.
pub fn search_reduced_optimal(n: f64) -> ReducedSearchReport {
    search_reduced(n, Schedule::optimal(n).iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;
    use psq_math::approx::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_search_finds_the_target() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(n, t) in &[(64u64, 17u64), (256, 0), (1024, 1023)] {
            let db = Database::new(n, t);
            let outcome = search_statevector_optimal(&db, &mut rng);
            assert!(outcome.is_correct(), "failed for N = {n}");
            assert_eq!(outcome.queries, Schedule::optimal(n as f64).iterations);
        }
    }

    #[test]
    fn query_count_equals_iterations() {
        let db = Database::new(128, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = search_statevector(&db, 7, &mut rng);
        assert_eq!(outcome.queries, 7);
    }

    #[test]
    fn verified_search_is_never_wrong_and_counts_verification() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..20 {
            let db = Database::new(256, (trial * 13) % 256);
            let outcome = search_verified(&db, 16, &mut rng);
            assert!(outcome.is_correct());
            // At least the quantum iterations plus one verification query.
            let per_round = Schedule::optimal(256.0).iterations + 1;
            assert!(outcome.queries >= per_round);
            assert_eq!(outcome.queries % per_round, 0);
        }
    }

    #[test]
    fn reduced_and_statevector_agree_on_success_probability() {
        let n = 512u64;
        let iters = 9;
        let db = Database::new(n, 100);
        let psi = final_state(&db, iters);
        let reduced = search_reduced(n as f64, iters);
        assert_close(psi.probability(100), reduced.success_probability, 1e-10);
        assert_close(
            reduced.success_probability,
            theory::success_probability(n as f64, iters),
            1e-10,
        );
    }

    #[test]
    fn reduced_search_scales_to_enormous_databases() {
        let report = search_reduced_optimal(1e18);
        assert!(report.success_probability > 1.0 - 1e-9);
        // (π/4)·√1e18 ≈ 7.85e8 queries.
        assert!((report.queries as f64 - theory::full_search_queries(1e18)).abs() < 2.0);
    }

    #[test]
    fn zero_iterations_is_a_uniform_guess() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = Database::new(4096, 7);
        let outcome = search_statevector(&db, 0, &mut rng);
        assert_eq!(outcome.queries, 0);
        // Almost surely wrong: probability of a lucky guess is 1/4096.
        let _ = outcome.is_correct();
        let reduced = search_reduced(4096.0, 0);
        assert_close(reduced.success_probability, 1.0 / 4096.0, 1e-12);
    }
}
