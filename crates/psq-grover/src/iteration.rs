//! Iteration-count scheduling.
//!
//! Choosing *how many times* to apply the Grover operator is the entire game
//! in this paper: full search applies it `(π/4)√N` times, the partial-search
//! algorithm deliberately stops `θ(√(N/K))` iterations short in Step 1 and
//! then spends a smaller number of per-block iterations in Step 2.  This
//! module centralises those choices so the algorithm crates and the query
//! model agree on rounding.

use crate::theory;
use psq_math::angle::{grover_angle, optimal_grover_iterations};

/// A fully-resolved iteration schedule for a standard Grover run, together
/// with the state geometry it is predicted to produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Schedule {
    /// Database size `N`.
    pub n: f64,
    /// Number of Grover iterations to perform.
    pub iterations: u64,
    /// Predicted success probability after `iterations`.
    pub success_probability: f64,
    /// Predicted amplitude of the target state.
    pub target_amplitude: f64,
    /// Predicted amplitude of each non-target state.
    pub rest_amplitude: f64,
    /// Predicted angle of the state from the target (the paper's `θ`).
    pub angle_from_target: f64,
}

impl Schedule {
    /// Builds the schedule for an explicit iteration count.
    pub fn with_iterations(n: f64, iterations: u64) -> Self {
        Self {
            n,
            iterations,
            success_probability: theory::success_probability(n, iterations),
            target_amplitude: theory::target_amplitude_after(n, iterations),
            rest_amplitude: theory::rest_amplitude_after(n, iterations),
            angle_from_target: theory::angle_from_target_after(n, iterations),
        }
    }

    /// The optimal schedule `j* = round(π/(4θ) − 1/2)`.
    pub fn optimal(n: f64) -> Self {
        Self::with_iterations(n, optimal_grover_iterations(n))
    }

    /// The paper's truncated Step-1 schedule
    /// `ℓ1(ε) = ⌊(π/4)(1 − ε)√N⌋`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε ≤ 1`.
    pub fn truncated(n: f64, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must lie in [0, 1], got {epsilon}"
        );
        let iters = (std::f64::consts::FRAC_PI_4 * (1.0 - epsilon) * n.sqrt()).floor() as u64;
        Self::with_iterations(n, iters)
    }

    /// The smallest iteration count whose predicted success probability
    /// reaches `p`, or `None` if even the optimal count falls short.
    pub fn for_probability(n: f64, p: f64) -> Option<Self> {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        let max = optimal_grover_iterations(n);
        for j in 0..=max {
            if theory::success_probability(n, j) >= p {
                return Some(Self::with_iterations(n, j));
            }
        }
        None
    }
}

/// Number of iterations needed to rotate the state by `angle` radians towards
/// the target (each iteration advances by `2θ` with `sin θ = 1/√n`), rounded
/// to the nearest integer.
pub fn iterations_for_rotation(n: f64, angle: f64) -> u64 {
    assert!(angle >= 0.0, "rotation angle must be non-negative");
    let theta = grover_angle(n);
    (angle / (2.0 * theta)).round().max(0.0) as u64
}

/// The paper's Step-1 iteration count `ℓ1(ε) = ⌊(π/4)(1 − ε)√N⌋` as a bare
/// integer.
pub fn truncated_iterations(n: f64, epsilon: f64) -> u64 {
    Schedule::truncated(n, epsilon).iterations
}

/// Queries *saved* by stopping Step 1 at parameter `ε` instead of running the
/// full optimal schedule.
pub fn savings_versus_full(n: f64, epsilon: f64) -> u64 {
    let full = optimal_grover_iterations(n);
    let truncated = truncated_iterations(n, epsilon);
    full.saturating_sub(truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn optimal_schedule_matches_angle_module() {
        let s = Schedule::optimal((1u64 << 20) as f64);
        assert_eq!(s.iterations, optimal_grover_iterations((1u64 << 20) as f64));
        assert!(s.success_probability > 0.999_99);
        assert!(s.angle_from_target.abs() < 2.0 * grover_angle((1 << 20) as f64));
    }

    #[test]
    fn truncated_schedule_stops_short() {
        let n = (1u64 << 20) as f64;
        let eps = 0.25;
        let s = Schedule::truncated(n, eps);
        let full = Schedule::optimal(n);
        assert!(s.iterations < full.iterations);
        // Remaining angle is about (π/2)·ε.
        assert_close(s.angle_from_target, std::f64::consts::FRAC_PI_2 * eps, 0.01);
        assert_eq!(savings_versus_full(n, eps), full.iterations - s.iterations);
    }

    #[test]
    fn epsilon_zero_recovers_full_search_up_to_rounding() {
        let n = (1u64 << 16) as f64;
        let s = Schedule::truncated(n, 0.0);
        let full = Schedule::optimal(n);
        assert!(full.iterations.abs_diff(s.iterations) <= 1);
    }

    #[test]
    fn for_probability_finds_minimal_count() {
        let n = 4096.0;
        let s = Schedule::for_probability(n, 0.5).expect("reachable");
        assert!(s.success_probability >= 0.5);
        if s.iterations > 0 {
            assert!(theory::success_probability(n, s.iterations - 1) < 0.5);
        }
        assert!(Schedule::for_probability(n, 1.0).is_none() || n == 4.0);
    }

    #[test]
    fn rotation_iteration_count_round_trips() {
        let n = 1e8;
        let theta = grover_angle(n);
        let j = iterations_for_rotation(n, 100.0 * 2.0 * theta);
        assert_eq!(j, 100);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in [0, 1]")]
    fn rejects_out_of_range_epsilon() {
        Schedule::truncated(1024.0, 1.5);
    }
}
