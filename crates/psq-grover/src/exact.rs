//! Sure-success (zero-failure) Grover search.
//!
//! The paper repeatedly appeals to the fact that the `O(1/N)` failure
//! probability of textbook Grover search can be removed entirely "by
//! modifying the last iteration slightly so that the state vector does not
//! overshoot its target" (Section 2.1, citing Long and Brassard et al.).
//! This module implements that modification as *phase matching*: every
//! iteration uses the generalised operators
//!
//! ```text
//!   R_t(φ) = I + (e^{iφ} − 1)|t⟩⟨t|        (oracle phase rotation)
//!   D(φ)   = I + (e^{iφ} − 1)|ψ0⟩⟨ψ0|      (diffusion phase rotation)
//! ```
//!
//! with a common phase `φ ≤ π` chosen so that after a fixed number of
//! iterations the success probability is exactly 1.  Rather than trusting a
//! remembered closed form, [`matched_phase`] finds `φ` numerically on the
//! exact two-dimensional reduced model and the tests verify the resulting
//! probability is 1 to machine precision on the full simulator.

use psq_math::angle::grover_angle;
use psq_math::complex::Complex64;
use psq_sim::measure;
use psq_sim::oracle::{Database, FullSearchOutcome};
use psq_sim::statevector::StateVector;
use rand::Rng;

/// A fully-resolved sure-success plan: how many generalised iterations to
/// run and with what phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactPlan {
    /// Database size `N`.
    pub n: f64,
    /// Number of generalised Grover iterations.
    pub iterations: u64,
    /// The matched phase `φ` used by both `R_t(φ)` and `D(φ)`.
    pub phase: f64,
    /// Predicted failure probability (should be ≤ ~1e-12).
    pub predicted_failure: f64,
}

/// Evolves the exact two-dimensional model `(a_t, a_rest)` under `iters`
/// generalised iterations with phase `phi` and returns the success
/// probability `|a_t|²`.
///
/// The state stays in the span of the target and the uniform superposition of
/// the non-targets, so this is exact for every `N`.
pub fn success_probability_2d(n: f64, iters: u64, phi: f64) -> f64 {
    let theta = grover_angle(n);
    let (s, c) = (theta.sin(), theta.cos());
    // |ψ0⟩ in the {|t⟩, |rest⟩} basis.
    let psi0 = (Complex64::from_real(s), Complex64::from_real(c));
    let mut state = psi0;
    let rot = Complex64::cis(phi) - Complex64::ONE;
    for _ in 0..iters {
        // R_t(φ)
        state.0 *= Complex64::cis(phi);
        // D(φ): ψ += (e^{iφ} − 1)·⟨ψ0|ψ⟩·|ψ0⟩
        let overlap = psi0.0.conj() * state.0 + psi0.1.conj() * state.1;
        state.0 += rot * overlap * psi0.0;
        state.1 += rot * overlap * psi0.1;
    }
    state.0.norm_sqr()
}

/// Finds the matched phase for a given iteration budget, returning the phase
/// and the residual failure probability at that phase.
pub fn matched_phase(n: f64, iterations: u64) -> (f64, f64) {
    let objective = |phi: f64| 1.0 - success_probability_2d(n, iterations, phi);
    // The failure probability is smooth in φ; a coarse grid locates the basin
    // containing the zero and a golden-section refinement polishes it.
    let min = psq_math::optimize::minimize(objective, 1e-6, std::f64::consts::PI, 512, 1e-13);
    (min.x, min.value.max(0.0))
}

/// Builds the sure-success plan for a database of `n` items.
///
/// Starts from one more iteration than the standard optimum (phase matching
/// slows each iteration down slightly, so the optimum count can be
/// insufficient) and adds iterations until the matched phase drives the
/// failure probability below `1e-10`.
pub fn plan(n: f64) -> ExactPlan {
    let base = psq_math::angle::optimal_grover_iterations(n) + 1;
    for extra in 0..4 {
        let iterations = base + extra;
        let (phase, failure) = matched_phase(n, iterations);
        if failure < 1e-10 {
            return ExactPlan {
                n,
                iterations,
                phase,
                predicted_failure: failure,
            };
        }
    }
    unreachable!("phase matching must succeed within optimal + 4 iterations (N = {n})");
}

/// Runs the sure-success algorithm on the full state-vector simulator and
/// measures.
///
/// The measurement is distributed exactly on the target (up to floating-point
/// round-off), so the returned outcome is always correct; the number of
/// queries is `plan(N).iterations`, a constant more than `(π/4)√N`.
pub fn search_exact_statevector<R: Rng + ?Sized>(db: &Database, rng: &mut R) -> FullSearchOutcome {
    let p = plan(db.size() as f64);
    let span = db.counter().span();
    let psi = exact_final_state(db, &p);
    let reported = measure::sample_index(&psi, rng) as u64;
    FullSearchOutcome {
        reported_target: reported,
        true_target: db.target(),
        queries: span.elapsed(),
    }
}

/// The final state of the sure-success run (all probability on the target).
pub fn exact_final_state(db: &Database, plan: &ExactPlan) -> StateVector {
    let mut psi = StateVector::uniform(db.size() as usize);
    for _ in 0..plan.iterations {
        psi.apply_oracle_phase_rotation(db, plan.phase);
        psi.invert_about_mean_with_phase(plan.phase);
    }
    psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase_pi_recovers_standard_grover() {
        for &n in &[16.0, 100.0, 4096.0] {
            let j = psq_math::angle::optimal_grover_iterations(n);
            assert_close(
                success_probability_2d(n, j, std::f64::consts::PI),
                crate::theory::success_probability(n, j),
                1e-12,
            );
        }
    }

    #[test]
    fn matched_phase_reaches_probability_one_on_model() {
        for &n in &[12.0, 100.0, 1000.0, 1e6, 1e9] {
            let p = plan(n);
            assert!(
                p.predicted_failure < 1e-10,
                "failure {} too large for N = {n}",
                p.predicted_failure
            );
            assert!(p.phase > 0.0 && p.phase <= std::f64::consts::PI);
        }
    }

    #[test]
    fn matched_phase_is_below_pi_for_generic_sizes() {
        // For sizes where (π/4)√N is not close to an integer the matched
        // phase is strictly interior.
        let p = plan(1000.0);
        assert!(p.phase < std::f64::consts::PI - 1e-3);
    }

    #[test]
    fn exact_search_concentrates_all_probability_on_target() {
        for &(n, t) in &[(12u64, 7u64), (64, 0), (100, 99), (257, 41)] {
            let db = Database::new(n, t);
            let p = plan(n as f64);
            let psi = exact_final_state(&db, &p);
            assert!(
                psi.probability(t as usize) > 1.0 - 1e-9,
                "N = {n}: probability {}",
                psi.probability(t as usize)
            );
            assert_eq!(db.queries(), p.iterations);
        }
    }

    #[test]
    fn exact_search_outcome_is_always_correct() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..25u64 {
            let db = Database::new(200, (trial * 37) % 200);
            let outcome = search_exact_statevector(&db, &mut rng);
            assert!(outcome.is_correct());
        }
    }

    #[test]
    fn exact_search_costs_only_constantly_more_queries() {
        for &n in &[256.0, 4096.0, 65536.0] {
            let p = plan(n);
            let standard = psq_math::angle::optimal_grover_iterations(n);
            assert!(p.iterations >= standard);
            assert!(p.iterations <= standard + 4);
        }
    }
}
