//! Engine-level differential harness: the served counterpart of
//! `psq-sim`'s `backend_differential.rs`.
//!
//! The sim-level harness proves the four simulators implement the same
//! operators; this layer proves the *engine* preserves that equivalence
//! end to end — planner, schedule cache, executor pool, per-trial seeding —
//! and that nothing about worker count leaks into results:
//!
//! * sparse vs. reduced: **bit-identical** deterministic fields (except the
//!   backend tag) for every `K | N` shape up to `2^20`, at 1, 2 and 4
//!   executor threads;
//! * sparse vs. dense state vector: success estimates within `1e-12` and
//!   exact query/decision agreement on the dense-reachable domain;
//! * circuit: same query counts, success within its `O(1/N)` Step-3
//!   deviation;
//! * noisy jobs (each channel): sparse and dense trajectory runners agree
//!   on every decision field for identical `(spec, seed)`;
//! * any batch containing sparse jobs executes bit-identically at 1, 2 and
//!   4 threads.

use proptest::prelude::*;
use psq_engine::{
    generate_mixed_batch, Backend, BackendHint, Engine, EngineConfig, NoiseSpec, SearchJob,
};

fn engine_with_threads(threads: usize) -> Engine {
    Engine::new(EngineConfig {
        threads: Some(threads),
        ..EngineConfig::default()
    })
}

/// Runs `job` at 1, 2 and 4 executor threads, asserts the three runs are
/// bit-identical, and returns the single agreed result.
fn run_at_every_thread_count(job: &SearchJob) -> psq_engine::SearchResult {
    let one = engine_with_threads(1)
        .run_job(job)
        .expect("plans at 1 thread");
    for threads in [2usize, 4] {
        let other = engine_with_threads(threads)
            .run_job(job)
            .expect("plans at n threads");
        assert_eq!(
            one.deterministic_fields(),
            other.deterministic_fields(),
            "thread count {threads} changed the result of {job:?}"
        );
    }
    one
}

/// Satellite: sparse vs. reduced closed-rotation bit-parity for ideal block
/// search at every `K | N` up to `2^20`, at 1/2/4 engine threads.
///
/// Shapes sweep every power-of-two `K` dividing each power-of-two `N` (with
/// at least two items per block — the validation floor). Sparse delegates
/// its symmetric representation to the same `ReducedState` rotation and its
/// trials to the same job-seed sample stream, so *every* deterministic
/// field except the backend tag must agree bit-for-bit.
#[test]
fn sparse_and_reduced_are_bit_identical_at_every_dividing_k() {
    let mut shapes = 0usize;
    for n_exp in [4u32, 6, 10, 13, 16, 18, 20] {
        let n = 1u64 << n_exp;
        for k_exp in 1..n_exp {
            let k = 1u64 << k_exp;
            if n / k < 2 {
                continue;
            }
            // A target in the last block, off the block boundary when the
            // block has room.
            let target = n - 1 - (n / k).min(3) / 2;
            let base = SearchJob::new(shapes as u64, n, k, target)
                .with_seed(0xBEEF ^ (n + k))
                .with_trials(3);
            let sparse = run_at_every_thread_count(&base.with_backend(BackendHint::Sparse));
            let reduced = run_at_every_thread_count(&base.with_backend(BackendHint::Reduced));
            assert_eq!(sparse.backend, Backend::Sparse);
            assert_eq!(reduced.backend, Backend::Reduced);
            assert_eq!(
                sparse.block_found, reduced.block_found,
                "n=2^{n_exp} k=2^{k_exp}"
            );
            assert_eq!(sparse.true_block, reduced.true_block);
            assert_eq!(sparse.correct, reduced.correct);
            assert_eq!(sparse.queries, reduced.queries);
            assert_eq!(sparse.trials_correct, reduced.trials_correct);
            assert_eq!(
                sparse.success_estimate.to_bits(),
                reduced.success_estimate.to_bits(),
                "n=2^{n_exp} k=2^{k_exp}: sparse and reduced must be bit-identical"
            );
            shapes += 1;
        }
    }
    assert!(shapes >= 80, "swept {shapes} (N, K) shapes");
}

/// Tentpole: batches containing sparse jobs (ideal and noisy, huge-N
/// included via the mixed generator's `huge_n` arm) are bit-identical at
/// 1, 2 and 4 executor threads.
#[test]
fn batches_with_sparse_jobs_are_bit_identical_across_thread_counts() {
    let jobs = generate_mixed_batch(30, 11);
    assert!(
        jobs.iter().any(|j| j.backend == BackendHint::Sparse),
        "mixed batch exercises the sparse arm"
    );
    let reference = engine_with_threads(1).run_batch(&jobs);
    assert_eq!(reference.results.len(), jobs.len());
    for threads in [2usize, 4] {
        let other = engine_with_threads(threads).run_batch(&jobs);
        for (a, b) in reference.results.iter().zip(&other.results) {
            assert_eq!(
                a.deterministic_fields(),
                b.deterministic_fields(),
                "job {} diverged at {threads} threads",
                a.job_id
            );
        }
    }
}

/// `(n, k, target, seed)` over the dense-reachable power-of-two domain.
fn job_shape() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    (5u32..12, 1u32..4, 0u64..1 << 20, 0u64..u64::MAX / 2).prop_filter_map(
        "k must leave at least two items per block",
        |(n_exp, k_exp, target, seed)| {
            let n = 1u64 << n_exp;
            let k = 1u64 << k_exp;
            if n < 2 * k {
                return None;
            }
            Some((n, k, target % n, seed))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every backend pair on the overlap domain, served: query counts agree
    /// exactly across all four quantum backends; success estimates agree to
    /// ≤ 1e-12 among the exact three and to O(1/N) against the circuit.
    #[test]
    fn prop_served_backend_pairs_agree((n, k, target, seed) in job_shape()) {
        let base = SearchJob::new(0, n, k, target).with_seed(seed);
        let sv = run_at_every_thread_count(&base.with_backend(BackendHint::StateVector));
        let circuit = run_at_every_thread_count(&base.with_backend(BackendHint::Circuit));
        let reduced = run_at_every_thread_count(&base.with_backend(BackendHint::Reduced));
        let sparse = run_at_every_thread_count(&base.with_backend(BackendHint::Sparse));
        // Query counts are schedule properties, identical on all pairs.
        prop_assert_eq!(sv.queries, circuit.queries);
        prop_assert_eq!(sv.queries, reduced.queries);
        prop_assert_eq!(sv.queries, sparse.queries);
        // Exact backends pairwise ≤ 1e-12; sparse ≡ reduced bitwise.
        prop_assert!((sv.success_estimate - reduced.success_estimate).abs() < 1e-12);
        prop_assert!((sv.success_estimate - sparse.success_estimate).abs() < 1e-12);
        prop_assert_eq!(
            sparse.success_estimate.to_bits(),
            reduced.success_estimate.to_bits()
        );
        // The circuit's Step 3 deviates by O(1/N) within the target block.
        prop_assert!(
            (sv.success_estimate - circuit.success_estimate).abs() < 64.0 / n as f64,
            "circuit deviated: {} vs {}", circuit.success_estimate, sv.success_estimate
        );
    }

    /// Noisy differential, served: for each channel, sparse and dense
    /// trajectory backends agree on every decision field for identical
    /// `(spec, seed)` jobs, at every thread count.
    #[test]
    fn prop_served_noisy_sparse_matches_dense((n, k, target, seed) in job_shape()) {
        let spec = match seed % 4 {
            0 => NoiseSpec { depolarizing: 0.1, dephasing: 0.0, oracle_fault: 0.0 },
            1 => NoiseSpec { depolarizing: 0.0, dephasing: 0.1, oracle_fault: 0.0 },
            2 => NoiseSpec { depolarizing: 0.0, dephasing: 0.0, oracle_fault: 0.1 },
            _ => NoiseSpec { depolarizing: 0.05, dephasing: 0.05, oracle_fault: 0.05 },
        };
        let base = SearchJob::new(0, n, k, target)
            .with_seed(seed)
            .with_trials(2)
            .with_noise(spec);
        let dense = run_at_every_thread_count(&base.with_backend(BackendHint::StateVector));
        let sparse = run_at_every_thread_count(&base.with_backend(BackendHint::Sparse));
        prop_assert_eq!(dense.backend, Backend::StateVector);
        prop_assert_eq!(sparse.backend, Backend::Sparse);
        prop_assert_eq!(sparse.block_found, dense.block_found);
        prop_assert_eq!(sparse.true_block, dense.true_block);
        prop_assert_eq!(sparse.queries, dense.queries);
        prop_assert_eq!(sparse.trials_correct, dense.trials_correct);
        prop_assert!(
            (sparse.success_estimate - dense.success_estimate).abs() < 1e-12,
            "sparse {} vs dense {}", sparse.success_estimate, dense.success_estimate
        );
    }
}
