//! Property tests for the engine against direct algorithm invocation.
//!
//! The engine must be a *transparent* serving layer: for any job, the
//! planner-selected quantum backend has to report exactly the block, query
//! count and success probability that calling `psq_partial::PartialSearch`
//! directly (with the schedule's ε and the job's seed) would produce.

use proptest::prelude::*;
use psq_engine::{BackendHint, Engine, EngineConfig, Planner, SearchJob};
use psq_partial::PartialSearch;
use psq_sim::oracle::{Database, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(n, k, target, seed)` over a grid of valid power-of-two shapes.
fn job_shape() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    (7u32..12, 1u32..4, 0u64..1 << 20, 0u64..u64::MAX / 2).prop_filter_map(
        "k must leave at least two items per block",
        |(n_exp, k_exp, target, seed)| {
            let n = 1u64 << n_exp;
            let k = 1u64 << k_exp;
            if n < 2 * k {
                return None;
            }
            Some((n, k, target % n, seed))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn statevector_backend_matches_direct_invocation((n, k, target, seed) in job_shape()) {
        let engine = Engine::new(EngineConfig { threads: Some(2) });
        let job = SearchJob::new(0, n, k, target)
            .with_backend(BackendHint::StateVector)
            .with_seed(seed);
        let served = engine.run_job(&job).expect("job plans");

        // Direct invocation: same ε (from the engine's own schedule), same
        // seed, no engine in the loop.
        let plan = Planner::new().plan(&job).expect("plans");
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = PartialSearch::with_epsilon(plan.schedule.plan.epsilon)
            .run_statevector(&db, &partition, &mut rng);

        prop_assert_eq!(served.block_found, direct.outcome.reported_block);
        prop_assert_eq!(served.true_block, direct.outcome.true_block);
        prop_assert_eq!(served.queries, direct.outcome.queries);
        prop_assert_eq!(served.success_estimate, direct.success_probability);
    }

    #[test]
    fn reduced_backend_matches_direct_invocation((n, k, _target, seed) in job_shape()) {
        let engine = Engine::new(EngineConfig { threads: Some(2) });
        let job = SearchJob::new(0, n, k, _target)
            .with_backend(BackendHint::Reduced)
            .with_seed(seed);
        let served = engine.run_job(&job).expect("job plans");

        let plan = Planner::new().plan(&job).expect("plans");
        let direct = PartialSearch::with_epsilon(plan.schedule.plan.epsilon)
            .run_reduced(n as f64, k as f64);

        prop_assert_eq!(served.queries, direct.queries);
        prop_assert_eq!(served.success_estimate, direct.success_probability);
    }

    #[test]
    fn auto_backend_queries_match_the_published_schedule((n, k, target, seed) in job_shape()) {
        // Whatever backend Auto picks, the query count per trial must equal
        // the memoised schedule's ℓ1 + ℓ2 + 1 when it picks quantum.
        let engine = Engine::new(EngineConfig { threads: Some(2) });
        let job = SearchJob::new(0, n, k, target).with_seed(seed);
        let plan = engine.planner().plan(&job).expect("plans");
        let served = engine.run_job(&job).expect("runs");
        if matches!(
            served.backend,
            psq_engine::Backend::Reduced
                | psq_engine::Backend::StateVector
                | psq_engine::Backend::Circuit
        ) {
            prop_assert_eq!(served.queries, plan.schedule.plan.total_queries);
        }
        prop_assert!(served.success_estimate >= 0.0 && served.success_estimate <= 1.0 + 1e-12);
    }

    #[test]
    fn plans_are_cached_deterministically((n, k, target, _seed) in job_shape(), err in 0.001f64..0.2) {
        let job = SearchJob::new(0, n, k, target).with_error_target(err);
        let planner = Planner::new();
        let first = planner.plan(&job).expect("plans");
        let second = planner.plan(&job).expect("plans again");
        // Same spec → identical plan, and the second lookup was a hit.
        prop_assert_eq!(first, second);
        let stats = planner.cache().stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert!(stats.hits >= 1);
        // A fresh planner computes the identical schedule from scratch.
        let fresh = Planner::new().plan(&job).expect("fresh plan");
        prop_assert_eq!(first, fresh);
    }
}
