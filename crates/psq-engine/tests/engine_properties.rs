//! Property tests for the engine against direct algorithm invocation.
//!
//! The engine must be a *transparent* serving layer: for any job, the
//! planner-selected quantum backend has to report exactly the block, query
//! count and success probability that calling `psq_partial::PartialSearch`
//! directly (with the schedule's ε and the job's seed) would produce.

use proptest::prelude::*;
use psq_engine::{BackendHint, Engine, EngineConfig, NoiseSpec, Planner, SearchJob, SweepSpec};
use psq_partial::recursive::derive_seed;
use psq_partial::{PartialSearch, RecursiveSearch};
use psq_sim::oracle::{Database, Partition};
use psq_sim::scratch::AmplitudeScratch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(n, k, target, seed)` over a grid of valid power-of-two shapes.
fn job_shape() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    (7u32..12, 1u32..4, 0u64..1 << 20, 0u64..u64::MAX / 2).prop_filter_map(
        "k must leave at least two items per block",
        |(n_exp, k_exp, target, seed)| {
            let n = 1u64 << n_exp;
            let k = 1u64 << k_exp;
            if n < 2 * k {
                return None;
            }
            Some((n, k, target % n, seed))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn statevector_backend_matches_direct_invocation((n, k, target, seed) in job_shape()) {
        let engine = Engine::new(EngineConfig { threads: Some(2), ..EngineConfig::default() });
        let job = SearchJob::new(0, n, k, target)
            .with_backend(BackendHint::StateVector)
            .with_seed(seed);
        let served = engine.run_job(&job).expect("job plans");

        // Direct invocation: same ε (from the engine's own schedule), same
        // seed, no engine in the loop.
        let plan = Planner::new().plan(&job).expect("plans");
        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = PartialSearch::with_epsilon(plan.schedule.plan.epsilon)
            .run_statevector(&db, &partition, &mut rng);

        prop_assert_eq!(served.block_found, direct.outcome.reported_block);
        prop_assert_eq!(served.true_block, direct.outcome.true_block);
        prop_assert_eq!(served.queries, direct.outcome.queries);
        prop_assert_eq!(served.success_estimate, direct.success_probability);
    }

    #[test]
    fn reduced_backend_matches_direct_invocation((n, k, _target, seed) in job_shape()) {
        let engine = Engine::new(EngineConfig { threads: Some(2), ..EngineConfig::default() });
        let job = SearchJob::new(0, n, k, _target)
            .with_backend(BackendHint::Reduced)
            .with_seed(seed);
        let served = engine.run_job(&job).expect("job plans");

        let plan = Planner::new().plan(&job).expect("plans");
        let direct = PartialSearch::with_epsilon(plan.schedule.plan.epsilon)
            .run_reduced(n as f64, k as f64);

        prop_assert_eq!(served.queries, direct.queries);
        prop_assert_eq!(served.success_estimate, direct.success_probability);
    }

    #[test]
    fn auto_backend_queries_match_the_published_schedule((n, k, target, seed) in job_shape()) {
        // Whatever backend Auto picks, the query count per trial must equal
        // the memoised schedule's ℓ1 + ℓ2 + 1 when it picks quantum.
        let engine = Engine::new(EngineConfig { threads: Some(2), ..EngineConfig::default() });
        let job = SearchJob::new(0, n, k, target).with_seed(seed);
        let plan = engine.planner().plan(&job).expect("plans");
        let served = engine.run_job(&job).expect("runs");
        if matches!(
            served.backend,
            psq_engine::Backend::Reduced
                | psq_engine::Backend::StateVector
                | psq_engine::Backend::Circuit
        ) {
            prop_assert_eq!(served.queries, plan.schedule.plan.total_queries);
        }
        prop_assert!(served.success_estimate >= 0.0 && served.success_estimate <= 1.0 + 1e-12);
    }

    #[test]
    fn batches_are_bit_identical_across_pool_sizes(
        count in 4usize..24,
        batch_seed in 0u64..10_000,
        threads in 2usize..9,
    ) {
        // The work-stealing scheduler must be invisible in the results: a
        // mixed batch on an N-thread pool is bit-identical (wall times
        // aside) to the same batch on a single worker, whatever the steal
        // interleaving was. Caches off so every job truly executes.
        let config = EngineConfig { result_cache: false, ..EngineConfig::default() };
        let solo = Engine::new(EngineConfig { threads: Some(1), ..config });
        let pooled = Engine::new(EngineConfig { threads: Some(threads), ..config });
        let jobs = psq_engine::generate_mixed_batch(count, batch_seed);
        let a = solo.run_batch(&jobs);
        let b = pooled.run_batch(&jobs);
        prop_assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            prop_assert_eq!(x.deterministic_fields(), y.deterministic_fields());
        }
    }

    #[test]
    fn cached_repeats_match_cold_execution((n, k, target, seed) in job_shape()) {
        // The result cache must be observationally pure: a warm engine and a
        // cold engine agree on every deterministic field.
        let cached = Engine::new(EngineConfig { threads: Some(2), ..EngineConfig::default() });
        let job = SearchJob::new(0, n, k, target).with_seed(seed);
        let first = cached.run_job(&job).expect("cold run");
        let second = cached.run_job(&job).expect("warm run");
        prop_assert_eq!(first.deterministic_fields(), second.deterministic_fields());
        prop_assert!(cached.result_cache_stats().hits >= 1);
        let cold = Engine::new(EngineConfig {
            threads: Some(2),
            result_cache: false,
            ..EngineConfig::default()
        });
        let reference = cold.run_job(&job).expect("uncached run");
        prop_assert_eq!(first.deterministic_fields(), reference.deterministic_fields());
    }

    #[test]
    fn recursive_one_level_cutoff_matches_flat_partial_search((n, k, target, seed) in job_shape()) {
        // With the brute-force cutoff raised to the block size, the descent
        // degenerates to exactly one partial-search level plus the tail —
        // and that level must be *bit-identical* to a flat single-level
        // PartialSearch run with the same derived seed (the recursion adds
        // bookkeeping, never different dynamics).
        let search = RecursiveSearch {
            k,
            brute_force_cutoff: n / k,
            statevector_cutoff: n, // keep the single level on the exact kernels
            partial: PartialSearch::tuned(),
        };
        let mut scratch = AmplitudeScratch::new();
        let run = search.run_seeded(n, target, seed, &mut scratch);
        prop_assert_eq!(run.levels.len(), 2, "one quantum level + the tail");

        let db = Database::new(n, target);
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0));
        let flat = PartialSearch::tuned().run_statevector(&db, &partition, &mut rng);
        prop_assert_eq!(run.levels[0].block_found, flat.outcome.reported_block);
        prop_assert_eq!(run.levels[0].queries, flat.outcome.queries);
        prop_assert_eq!(
            run.levels[0].success_probability.to_bits(),
            flat.success_probability.to_bits()
        );
        // The tail brute-forces the block the flat search reported.
        let block_range = partition.block_range(flat.outcome.reported_block);
        prop_assert!(block_range.contains(&run.outcome.reported_target));
        prop_assert_eq!(
            run.outcome.queries,
            flat.outcome.queries + run.levels[1].queries
        );
    }

    #[test]
    fn plans_are_cached_deterministically((n, k, target, _seed) in job_shape(), err in 0.001f64..0.2) {
        let job = SearchJob::new(0, n, k, target).with_error_target(err);
        let planner = Planner::new();
        let first = planner.plan(&job).expect("plans");
        let second = planner.plan(&job).expect("plans again");
        // Same spec → identical plan, and the second lookup was a hit.
        prop_assert_eq!(first, second);
        let stats = planner.cache().stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert!(stats.hits >= 1);
        // A fresh planner computes the identical schedule from scratch.
        let fresh = Planner::new().plan(&job).expect("fresh plan");
        prop_assert_eq!(first, fresh);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An explicit all-zero noise spec is the identity: at every thread
    /// count, the noisy path with `p = 0` must return bit-for-bit what the
    /// ideal state-vector backend returns for the same job (the all-zero
    /// spec routes to the untouched ideal runner, so nothing — not the
    /// cache key, not the planner, not the kernels — may tell them apart).
    #[test]
    fn zero_rate_noise_is_bit_identical_to_ideal_at_any_thread_count(
        (n, k, target, seed) in job_shape(),
    ) {
        let ideal_job = SearchJob::new(0, n, k, target)
            .with_backend(BackendHint::StateVector)
            .with_seed(seed);
        let noisy_job = ideal_job.with_noise(NoiseSpec::ideal());
        let config = EngineConfig { result_cache: false, ..EngineConfig::default() };
        let reference = Engine::new(EngineConfig { threads: Some(1), ..config })
            .run_job(&ideal_job)
            .expect("ideal run");
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(EngineConfig { threads: Some(threads), ..config });
            let result = engine.run_job(&noisy_job).expect("zero-noise run");
            prop_assert_eq!(
                reference.deterministic_fields(),
                result.deterministic_fields(),
                "{}-thread zero-noise run diverged from ideal",
                threads
            );
            prop_assert_eq!(
                reference.success_estimate.to_bits(),
                result.success_estimate.to_bits()
            );
        }
    }

    /// A fixed-seed depolarizing job is a pure function of its spec: every
    /// run, at every thread count, reproduces the same bits (per-trial
    /// seeds derive from the job seed, so neither the scheduler nor the
    /// trial loop order can leak in).
    #[test]
    fn fixed_seed_depolarizing_jobs_are_bit_identical_across_runs(
        (n, k, target, seed) in job_shape(),
        rate in 0.005f64..0.2,
    ) {
        let job = SearchJob::new(0, n, k, target)
            .with_seed(seed)
            .with_trials(3)
            .with_noise(NoiseSpec { depolarizing: rate, ..NoiseSpec::ideal() });
        let config = EngineConfig { result_cache: false, ..EngineConfig::default() };
        let reference = Engine::new(EngineConfig { threads: Some(1), ..config })
            .run_job(&job)
            .expect("noisy run");
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(EngineConfig { threads: Some(threads), ..config });
            let result = engine.run_job(&job).expect("repeat run");
            prop_assert_eq!(
                reference.deterministic_fields(),
                result.deterministic_fields(),
                "{}-thread repeat diverged",
                threads
            );
            prop_assert_eq!(
                reference.success_estimate.to_bits(),
                result.success_estimate.to_bits()
            );
        }
    }

    /// A sweep report is a pure function of `(base spec, sweep spec)`:
    /// however the expanded grid is chunked into batches — one batch, one
    /// point at a time, or uneven pieces — the per-point results and the
    /// fitted thresholds are identical.
    #[test]
    fn sweeps_are_pure_functions_of_spec_and_seed_regardless_of_chunking(
        seed in 0u64..10_000,
        chunk in 1usize..5,
    ) {
        let base = SearchJob::new(0, 1 << 9, 4, 17).with_seed(seed).with_trials(2);
        let spec = SweepSpec {
            p: vec![0.0, 0.05, 0.1, 0.2],
            k: vec![4, 8],
            ..SweepSpec::default()
        };
        let config = EngineConfig {
            threads: Some(2),
            result_cache: false,
            ..EngineConfig::default()
        };
        let whole = Engine::new(config)
            .run_sweep(&base, &spec)
            .expect("sweep runs");
        // Re-run the same grid through a fresh engine in `chunk`-sized
        // batches; every point must come back bit-identical.
        let jobs = spec.expand(&base).expect("valid sweep");
        let engine = Engine::new(config);
        let mut chunked = Vec::new();
        for piece in jobs.chunks(chunk) {
            chunked.extend(engine.run_batch(piece).results);
        }
        prop_assert_eq!(whole.points.len(), chunked.len());
        for (point, rerun) in whole.points.iter().zip(&chunked) {
            prop_assert_eq!(
                point.result.deterministic_fields(),
                rerun.deterministic_fields()
            );
            prop_assert_eq!(
                point.result.success_estimate.to_bits(),
                rerun.success_estimate.to_bits()
            );
        }
    }
}

/// Recursive full-address jobs are pure functions of their spec: a
/// multi-trial job spanning reduced and state-vector levels must come back
/// bit-identical from 1-, 2- and 4-thread engines (per-level and per-trial
/// seeding leaves the scheduler no influence over the descent).
#[test]
fn recursive_jobs_are_bit_identical_across_engine_thread_counts() {
    let job = SearchJob::full_address(0, 1 << 18, 4, 201_773)
        .with_seed(424_242)
        .with_trials(2);
    let reference = Engine::new(EngineConfig {
        threads: Some(1),
        result_cache: false,
        ..EngineConfig::default()
    })
    .run_job(&job)
    .expect("single-threaded run");
    assert_eq!(reference.address_found, Some(201_773));
    assert!(reference.levels > 0);
    for threads in [2usize, 4] {
        let engine = Engine::new(EngineConfig {
            threads: Some(threads),
            result_cache: false,
            ..EngineConfig::default()
        });
        let result = engine.run_job(&job).expect("multi-threaded run");
        assert_eq!(
            reference.deterministic_fields(),
            result.deterministic_fields(),
            "{threads}-thread engine diverged on a full-address job"
        );
        assert_eq!(
            reference.success_estimate.to_bits(),
            result.success_estimate.to_bits()
        );
    }
}

/// A state-vector job large enough to cross the kernels' intra-state
/// parallel threshold (`2 × FIXED_CHUNK` amplitudes): the fixed chunk
/// layout makes the sweeps' floating-point folds independent of any thread
/// budget, so 1-worker and N-worker engines must return bit-identical
/// results on the new structure-of-arrays layout.
#[test]
fn large_statevector_jobs_are_bit_identical_across_engine_thread_counts() {
    let n = 1u64 << 18;
    let job = SearchJob::new(0, n, 8, 191_919)
        .with_backend(BackendHint::StateVector)
        .with_seed(7);
    let reference = Engine::new(EngineConfig {
        threads: Some(1),
        result_cache: false,
        ..EngineConfig::default()
    })
    .run_job(&job)
    .expect("single-threaded run");
    for threads in [2usize, 4] {
        let engine = Engine::new(EngineConfig {
            threads: Some(threads),
            result_cache: false,
            ..EngineConfig::default()
        });
        let result = engine.run_job(&job).expect("multi-threaded run");
        assert_eq!(
            reference.deterministic_fields(),
            result.deterministic_fields(),
            "{threads}-thread engine diverged"
        );
        // Bit-level check on the success estimate, the field with full
        // floating-point sensitivity to the sweep folds.
        assert_eq!(
            reference.success_estimate.to_bits(),
            result.success_estimate.to_bits()
        );
    }
}
