//! Overhead guard for the observability layer.
//!
//! The histograms and spans ride the engine's hot path unconditionally, so
//! this suite pins down what that costs when tracing is *disabled* (the
//! production default): a disabled `Span::enter` must compile down to a
//! single relaxed atomic load (no clock read, no allocation), and the
//! always-on per-stage measurements must stay deep inside the noise of a
//! real mixed batch.

use psq_engine::{generate_mixed_batch, Engine, EngineConfig};
use psq_obs::{trace, Span};
use std::time::Instant;

/// Spot-check that disabled-level spans are the single atomic load the
/// design promises: no clock is read, nothing is emitted, and a million
/// enter/finish pairs cost well under a microsecond each even with the
/// loop's own bookkeeping.
#[test]
fn disabled_spans_are_a_single_atomic_load() {
    assert!(!trace::enabled(), "tracing must be off by default");
    let started = Instant::now();
    let mut timed = 0u32;
    for _ in 0..1_000_000 {
        let span = Span::enter(trace::stage::PLAN);
        timed += u32::from(span.is_timing());
        assert!(span.finish(0).is_none());
    }
    let elapsed = started.elapsed();
    assert_eq!(timed, 0, "disabled spans must never read the clock");
    // ~1-2ns each in practice; 1µs each is orders of magnitude of headroom
    // against CI noise while still catching an accidental Instant::now().
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "1M disabled spans took {elapsed:?} — the disabled path is no longer cheap"
    );
}

/// A 512-job mixed batch with tracing disabled: the per-stage measurements
/// (plan + cache lookup clock reads, histogram records) must be a small
/// fraction of the work they observe. `sum_us` of the observability-only
/// stages is exactly the time the instrumented path added clock reads
/// around, so comparing it against the batch's backend execution time
/// bounds the instrumentation below the noise floor of the run itself.
#[test]
fn mixed_batch_instrumentation_stays_within_noise() {
    let engine = Engine::new(EngineConfig {
        threads: Some(4),
        ..EngineConfig::default()
    });
    let jobs = generate_mixed_batch(512, 9);
    let report = engine.run_batch(&jobs);
    assert_eq!(report.results.len(), 512);

    let obs = engine.obs_snapshot();
    assert_eq!(obs.plan_us.count, 512, "every job's planning was observed");
    let execute_us: f64 = obs
        .backend_latency
        .values()
        .map(|hist| hist.sum_us as f64)
        .sum();
    let observed_overhead_us = (obs.plan_us.sum_us + obs.cache_lookup_us.sum_us) as f64;
    assert!(
        execute_us > 0.0,
        "the batch must have executed real backend work"
    );
    // Plan + cache-lookup stages (which exist with or without psq-obs; the
    // instrumentation only added the clock reads bracketing them) stay far
    // below the execution they annotate. Mixed batches run 20-40µs/job on
    // the backends vs sub-µs planning, so 50% is a generous noise ceiling.
    assert!(
        observed_overhead_us < execute_us * 0.5,
        "plan+cache stages ({observed_overhead_us} us) out of proportion \
         to execution ({execute_us} us)"
    );

    // And the deterministic-results contract survives instrumentation: the
    // same batch on a fresh engine is bit-identical.
    let reference = Engine::new(EngineConfig {
        threads: Some(1),
        ..EngineConfig::default()
    })
    .run_batch(&jobs);
    for (a, b) in report.results.iter().zip(&reference.results) {
        assert_eq!(a.deterministic_fields(), b.deterministic_fields());
    }
}
