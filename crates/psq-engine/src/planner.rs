//! Backend selection and schedule memoisation.
//!
//! Planning splits cleanly in two:
//!
//! 1. **Schedule** — the discretised `(ℓ1, ℓ2)` iteration counts of the
//!    three-step algorithm. These depend only on `(N, K, error_target)` and
//!    are expensive enough to be worth memoising (the tuned variant scans a
//!    window of `ℓ1` candidates): the [`PlanCache`] stores one
//!    [`PlannedSchedule`] per discretised key and is shared by every worker
//!    in the executor.
//! 2. **Backend** — which execution substrate honours the job's error target
//!    most cheaply. The [`CostModel`] scores each backend in abstract kernel
//!    operations; [`Planner::plan`] resolves a [`BackendHint`] (checking
//!    feasibility) or, for `Auto`, picks the cheapest feasible backend whose
//!    guaranteed error meets the target.

use crate::spec::{Backend, BackendHint, SearchJob};
use parking_lot::Mutex;
use psq_math::bits;
use psq_partial::SearchPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest database the full state-vector simulator will materialise
/// (`2^22` amplitudes ≈ 64 MiB across the two planes).
pub const MAX_STATEVECTOR_N: u64 = 1 << 22;

/// Largest register the circuit path will simulate.
///
/// Raised from `2^14` after the fast-Walsh–Hadamard rewrite: the circuit
/// backend's per-amplitude cost is now within a small factor of the
/// state-vector backend's (see the calibrated weights below), so the cap is
/// set by simulation-time sanity rather than the old per-gate sweep cost.
pub const MAX_CIRCUIT_N: u64 = 1 << 16;

/// Calibrated cost-model weights, re-measured after the structure-of-arrays
/// / fused-sweep kernel rewrite (`BENCH_engine.json`, 1 vCPU): one fused
/// state-vector amplitude update ≈ 0.5 ns defines the unit. A reduced-
/// simulator iteration updates three amplitudes in closed form (≈ 0.2 ns);
/// an FWHT butterfly costs slightly more than a fused sweep element
/// (≈ 0.7 ns, two planes' worth of adds when the state is complex); a
/// classical probe pays oracle-call plus RNG overhead (≈ 4 ns). Only the
/// cross-backend ratios matter — `Auto` compares these scores.
pub const REDUCED_ITER_WEIGHT: f64 = 0.4;
/// See [`REDUCED_ITER_WEIGHT`].
pub const STATEVECTOR_AMP_WEIGHT: f64 = 1.0;
/// See [`REDUCED_ITER_WEIGHT`].
pub const CIRCUIT_BUTTERFLY_WEIGHT: f64 = 1.4;
/// See [`REDUCED_ITER_WEIGHT`].
pub const CLASSICAL_PROBE_WEIGHT: f64 = 8.0;

/// Largest database the sparse backend accepts when the job's noise spec
/// includes dephasing. Phase kicks split amplitude-equivalence classes, and
/// once the class budget is exhausted the sparse state degrades to an exact
/// hash-map of basis states — which only fits below
/// [`psq_sim::sparse::SPARSE_MAP_CEILING`]. Depolarizing and oracle-fault
/// channels never split classes (collapses *rebuild* the canonical `K + 2`
/// classes), so they carry no size ceiling at all.
pub const MAX_SPARSE_DEPHASING_N: u64 = psq_sim::sparse::SPARSE_MAP_CEILING;

/// Cost-model weight for one sparse class update, per class per iteration.
/// The sparse kernels are the reduced simulator's closed-form rotations
/// generalised to `O(class_count)` entries, so the per-class cost matches
/// [`REDUCED_ITER_WEIGHT`]'s per-amplitude cost.
pub const SPARSE_CLASS_WEIGHT: f64 = 0.4;

/// Ops budget for one exact state-vector level of a recursive full-address
/// descent. The planner walks the descent's level sizes and sets the
/// state-vector cutoff at the largest level whose fused-sweep cost
/// (`queries × size ×` [`STATEVECTOR_AMP_WEIGHT`]) stays inside this budget;
/// larger levels run the O(1) reduced rotation form instead. At the
/// calibrated ~0.5 ns/op this bounds exact simulation to ~125 µs per level
/// (in practice: levels of ≤ ~2^12 amplitudes at K = 4).
pub const RECURSIVE_SV_LEVEL_BUDGET: f64 = 250_000.0;

/// A memoised schedule for one `(N, K, error_target)` key.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannedSchedule {
    /// The discretised plan (`ℓ1`, `ℓ2`, predicted amplitudes).
    pub plan: SearchPlan,
    /// Whether the finite-`N` tuned search was needed to approach the error
    /// target (the asymptotically optimal `ε` plan is tried first).
    pub tuned: bool,
    /// Whether the plan's predicted error actually meets the target
    /// (quantum schedules cannot beat their `O(1/√N)` residual, so a
    /// stricter target forces a classical backend).
    pub meets_error_target: bool,
}

/// Cache statistics, exposed through batch metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that computed and inserted a fresh schedule.
    pub misses: u64,
    /// Distinct schedules currently stored.
    pub entries: u64,
}

/// Memoised `(N, K, error_target) → PlannedSchedule` map, safe to share
/// across executor workers.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<HashMap<(u64, u64, u64), PlannedSchedule>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the schedule for `(n, k, error_target)`, computing and
    /// memoising it on first use.
    pub fn schedule(&self, n: u64, k: u64, error_target: f64) -> PlannedSchedule {
        let key = (n, k, error_target.to_bits());
        if let Some(hit) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        // Computed outside the lock: schedules for distinct keys can build
        // concurrently, and a racing duplicate insert is harmless (the
        // computation is deterministic).
        let schedule = compute_schedule(n as f64, k as f64, error_target);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(key, schedule);
        schedule
    }

    /// Current statistics.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().len() as u64,
        }
    }
}

/// Builds the `(ℓ1, ℓ2)` schedule for the key, preferring the asymptotically
/// optimal `ε` and falling back to the finite-`N` tuned plan when the
/// optimum's discretisation residue exceeds the error target.
fn compute_schedule(n: f64, k: f64, error_target: f64) -> PlannedSchedule {
    let optimal = SearchPlan::with_optimal_epsilon(n, k);
    if optimal.predicted_error_probability() <= error_target {
        return PlannedSchedule {
            plan: optimal,
            tuned: false,
            meets_error_target: true,
        };
    }
    let tuned = SearchPlan::tuned(n, k);
    let meets = tuned.predicted_error_probability() <= error_target;
    if !meets && optimal.predicted_error_probability() <= tuned.predicted_error_probability() {
        // Neither meets the target; keep the cheaper/better of the two.
        return PlannedSchedule {
            plan: optimal,
            tuned: false,
            meets_error_target: false,
        };
    }
    PlannedSchedule {
        plan: tuned,
        tuned: true,
        meets_error_target: meets,
    }
}

/// One backend's score for a job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// The backend being scored.
    pub backend: Backend,
    /// Abstract kernel operations for the whole job (all trials).
    pub ops: f64,
    /// Whether the backend can run this job at all (dimension and memory
    /// constraints).
    pub feasible: bool,
    /// Whether the backend's guaranteed error meets the job's target.
    pub meets_error_target: bool,
}

/// The engine's cost model: scores every backend for a job in abstract
/// kernel operations so `Auto` can pick the cheapest faithful one.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModel;

impl CostModel {
    /// Scores `backend` for a job of shape `(n, k, trials)` running
    /// `schedule`.
    pub fn estimate(
        &self,
        backend: Backend,
        n: u64,
        k: u64,
        trials: u32,
        schedule: &PlannedSchedule,
    ) -> CostEstimate {
        let nf = n as f64;
        let kf = k as f64;
        let t = trials as f64;
        let queries = schedule.plan.total_queries as f64;
        let pow2 = bits::is_power_of_two(n) && bits::is_power_of_two(k);
        let (ops, feasible, meets) = match backend {
            // Closed-form rotation update per iteration: O(queries).
            Backend::Reduced => (
                queries * t * REDUCED_ITER_WEIGHT,
                true,
                schedule.meets_error_target,
            ),
            // Each fused iteration is one sweep over the amplitude plane.
            Backend::StateVector => (
                queries * nf * t * STATEVECTOR_AMP_WEIGHT,
                n <= MAX_STATEVECTOR_N,
                schedule.meets_error_target,
            ),
            // Two FWHT walls per iteration: log2(N) butterfly levels over
            // the plane instead of the old n sequential per-gate sweeps.
            Backend::Circuit => (
                queries * nf * nf.log2().max(1.0) * t * CIRCUIT_BUTTERFLY_WEIGHT,
                pow2 && n <= MAX_CIRCUIT_N,
                schedule.meets_error_target,
            ),
            // Worst-case probe count; zero error by construction.
            Backend::ClassicalDeterministic => (
                nf * (1.0 - 1.0 / kf) * t * CLASSICAL_PROBE_WEIGHT,
                true,
                true,
            ),
            // Expected probe count; zero error by construction.
            Backend::ClassicalRandomized => (
                nf / 2.0 * (1.0 - 1.0 / (kf * kf)) * t * CLASSICAL_PROBE_WEIGHT,
                true,
                true,
            ),
            // Closed-form approximation of the recursive descent: per-level
            // query counts form the geometric series `q·√K/(√K − 1)`, every
            // level charged at the reduced-form weight, plus the `O(N^{1/3})`
            // brute-force tail. [`Planner::plan`] replaces this with the
            // precise cache-backed walk ([`Planner::estimate_recursive`]),
            // which also prices the exact state-vector levels below the
            // cutoff; this arm keeps the pure `CostModel` total.
            Backend::Recursive => {
                let series = kf.sqrt() / (kf.sqrt() - 1.0);
                let tail = nf.cbrt().max(kf);
                (
                    (queries * series * REDUCED_ITER_WEIGHT + tail * CLASSICAL_PROBE_WEIGHT) * t,
                    true,
                    schedule.meets_error_target,
                )
            }
            // The work term is the *class count*, not `N`: the canonical
            // sparse state never holds more than `K + 2` amplitude classes
            // (target, pinned survivor, and the per-block slices), so the
            // per-iteration cost is `O(K)` no matter how large the database.
            // Ideal feasibility is unconditional — noise-shape ceilings are
            // applied by [`Planner::plan`], which knows the job's spec.
            Backend::Sparse => (
                queries * (kf + 2.0) * t * SPARSE_CLASS_WEIGHT,
                true,
                schedule.meets_error_target,
            ),
        };
        CostEstimate {
            backend,
            ops,
            feasible,
            meets_error_target: meets,
        }
    }
}

/// A fully resolved execution plan for one job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// The backend the executor will run.
    pub backend: Backend,
    /// The memoised schedule (meaningful for quantum backends; classical
    /// backends ignore it).
    pub schedule: PlannedSchedule,
    /// The cost model's score for the chosen backend.
    pub estimated_ops: f64,
    /// For [`Backend::Recursive`]: descent levels at or below this size run
    /// the exact state-vector kernels, larger ones the reduced rotation
    /// form (chosen by [`Planner::estimate_recursive`] from the memoised
    /// per-level schedules and [`RECURSIVE_SV_LEVEL_BUDGET`]). `0` on every
    /// other backend.
    pub sv_cutoff: u64,
}

/// Resolves jobs to execution plans through the shared [`PlanCache`].
#[derive(Default)]
pub struct Planner {
    cache: PlanCache,
    cost_model: CostModel,
}

impl Planner {
    /// A planner with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared schedule cache (for statistics).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Scores every backend for `job`, in the order the planner considers
    /// them (the `Auto` candidates followed by the explicit-only recursive
    /// backend). Exposed for tests and the binary's `--explain`. The
    /// recursive row uses the precise cache-backed walk, not the cost
    /// model's closed-form approximation.
    ///
    /// Validates the job first: schedule construction asserts its inputs,
    /// so an unvalidated malformed job would panic rather than err.
    pub fn explain(&self, job: &SearchJob) -> Result<Vec<CostEstimate>, String> {
        job.validate()?;
        let schedule = self.cache.schedule(job.n, job.k, job.error_target);
        Ok(Backend::ALL
            .iter()
            .map(|&b| match b {
                Backend::Recursive => self.estimate_recursive(job).0,
                _ => self
                    .cost_model
                    .estimate(b, job.n, job.k, job.trials, &schedule),
            })
            .collect())
    }

    /// Prices the recursive full-address descent for `job` and chooses its
    /// state-vector cutoff.
    ///
    /// Walks the actual level sizes (`N, N/K, N/K², …` down to the
    /// `max(K, ⌈N^{1/3}⌉)` brute-force cutoff), pulling each level's
    /// `(size, K, ε)` schedule from the memoised [`PlanCache`] with the
    /// error budget split evenly across levels. A level runs the exact
    /// state-vector kernels when its fused-sweep cost fits
    /// [`RECURSIVE_SV_LEVEL_BUDGET`] (and the state fits in memory), the
    /// O(1) reduced rotation form otherwise; the returned cutoff is the
    /// largest exact-simulation level size. `meets_error_target` reflects
    /// the *accumulated* error `1 − Π p_level` of the whole descent, the
    /// quantity Section 4's error-accumulation argument bounds.
    pub fn estimate_recursive(&self, job: &SearchJob) -> (CostEstimate, u64) {
        let mut sizes = Vec::new();
        let brute_cutoff = ((job.n as f64).cbrt().ceil() as u64).max(job.k);
        let mut len = job.n;
        while len > brute_cutoff && len.is_multiple_of(job.k) && len / job.k >= 2 {
            sizes.push(len);
            len /= job.k;
        }
        let per_level_target = job.error_target / sizes.len().max(1) as f64;
        let mut ops = 0.0;
        let mut success = 1.0;
        let mut sv_cutoff = 0u64;
        for &size in &sizes {
            let schedule = self.cache.schedule(size, job.k, per_level_target);
            let queries = schedule.plan.total_queries as f64;
            let sv_ops = queries * size as f64 * STATEVECTOR_AMP_WEIGHT;
            if size <= MAX_STATEVECTOR_N && sv_ops <= RECURSIVE_SV_LEVEL_BUDGET {
                sv_cutoff = sv_cutoff.max(size);
                ops += sv_ops;
            } else {
                ops += queries * REDUCED_ITER_WEIGHT;
            }
            success *= schedule.plan.predicted_success_probability;
        }
        // The brute-force tail probes all but one surviving address.
        ops += len.saturating_sub(1) as f64 * CLASSICAL_PROBE_WEIGHT;
        let estimate = CostEstimate {
            backend: Backend::Recursive,
            ops: ops * f64::from(job.trials),
            feasible: true,
            meets_error_target: (1.0 - success) <= job.error_target,
        };
        (estimate, sv_cutoff)
    }

    /// Resolves `job` to an execution plan, or explains why it cannot run.
    pub fn plan(&self, job: &SearchJob) -> Result<ExecutionPlan, String> {
        job.validate()?;
        let schedule = self.cache.schedule(job.n, job.k, job.error_target);
        let resolve = |backend: Backend| -> Result<ExecutionPlan, String> {
            let est = self
                .cost_model
                .estimate(backend, job.n, job.k, job.trials, &schedule);
            if !est.feasible {
                return Err(format!(
                    "job {}: backend {:?} cannot run n = {}, k = {} \
                     (dimension or memory constraint)",
                    job.id, backend, job.n, job.k
                ));
            }
            Ok(ExecutionPlan {
                backend,
                schedule,
                estimated_ops: est.ops,
                sv_cutoff: 0,
            })
        };
        // Non-ideal noise runs as per-query trajectories on a substrate
        // where the channels act on amplitudes: the full state vector, or
        // the sparse class simulator when its class growth stays bounded.
        // The reduced three-amplitude form cannot represent a depolarizing
        // collapse or a phase kick, the circuit path has no channel hooks,
        // and the classical scans have no quantum state at all; routing any
        // of them would silently answer the noiseless question. An explicit
        // all-zero spec is the ideal dynamics and plans as if absent.
        if let Some(spec) = job.effective_noise() {
            // Dephasing phase-kicks split amplitude classes, so the sparse
            // state must be able to degrade to an exact map if the class
            // budget runs out — which caps `n`. Collapse-only channels
            // (depolarizing, oracle faults) rebuild the canonical `K + 2`
            // classes instead, so they only need the class budget itself.
            let sparse_ok = if spec.forces_complex() {
                job.n <= MAX_SPARSE_DEPHASING_N
            } else {
                job.k + 2 <= psq_sim::sparse::DEFAULT_MAX_CLASSES as u64
                    || job.n <= MAX_SPARSE_DEPHASING_N
            };
            return match job.backend {
                BackendHint::StateVector => resolve(Backend::StateVector),
                BackendHint::Sparse if sparse_ok => resolve(Backend::Sparse),
                BackendHint::Sparse => Err(format!(
                    "job {}: sparse backend cannot bound class growth under this \
                     noise shape at n = {} (dephasing requires n <= {})",
                    job.id, job.n, MAX_SPARSE_DEPHASING_N
                )),
                // Auto keeps the dense trajectories wherever they fit (every
                // pre-sparse noisy job planned this way, and the channels
                // there act on raw amplitudes with no class bookkeeping);
                // above the dense ceiling the sparse trajectories take over.
                BackendHint::Auto if job.n <= MAX_STATEVECTOR_N => resolve(Backend::StateVector),
                BackendHint::Auto if sparse_ok => resolve(Backend::Sparse),
                BackendHint::Auto => Err(format!(
                    "job {}: no backend can apply noise channels at n = {} \
                     (dense ceiling {}, sparse dephasing ceiling {})",
                    job.id, job.n, MAX_STATEVECTOR_N, MAX_SPARSE_DEPHASING_N
                )),
                other => Err(format!(
                    "job {}: noise channels require the state-vector or sparse \
                     backend (hint {other:?} cannot apply per-query channels)",
                    job.id
                )),
            };
        }
        match job.backend {
            BackendHint::Reduced => resolve(Backend::Reduced),
            BackendHint::StateVector => resolve(Backend::StateVector),
            BackendHint::Circuit => resolve(Backend::Circuit),
            // Ideal dynamics never split classes, so the sparse simulator
            // runs at any `n` — it is the only exact-amplitude backend with
            // no size ceiling (`MAX_STATEVECTOR_N` and `MAX_CIRCUIT_N` do
            // not apply).
            BackendHint::Sparse => resolve(Backend::Sparse),
            BackendHint::ClassicalDeterministic => resolve(Backend::ClassicalDeterministic),
            BackendHint::ClassicalRandomized => resolve(Backend::ClassicalRandomized),
            BackendHint::Recursive => {
                let (est, sv_cutoff) = self.estimate_recursive(job);
                Ok(ExecutionPlan {
                    backend: Backend::Recursive,
                    schedule,
                    estimated_ops: est.ops,
                    sv_cutoff,
                })
            }
            BackendHint::Auto => {
                // `Auto` only considers the block-resolution backends:
                // recursive full-address search answers a different (and
                // strictly costlier) question, so it must be asked for.
                let best = Backend::AUTO_CANDIDATES
                    .iter()
                    .map(|&b| {
                        self.cost_model
                            .estimate(b, job.n, job.k, job.trials, &schedule)
                    })
                    .filter(|e| e.feasible && e.meets_error_target)
                    .min_by(|a, b| a.ops.total_cmp(&b.ops));
                match best {
                    Some(est) => Ok(ExecutionPlan {
                        backend: est.backend,
                        schedule,
                        estimated_ops: est.ops,
                        sv_cutoff: 0,
                    }),
                    // Always reachable: the classical backends are feasible
                    // for every valid job and have zero error.
                    None => Err(format!(
                        "job {}: no backend meets error target {}",
                        job.id, job.error_target
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SearchJob;

    #[test]
    fn auto_prefers_reduced_for_routine_error_budgets() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 1 << 20, 8, 12345);
        let plan = planner.plan(&job).expect("plans");
        assert_eq!(plan.backend, Backend::Reduced);
        assert!(plan.schedule.meets_error_target);
    }

    #[test]
    fn auto_falls_back_to_classical_for_zero_error() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 4096, 4, 7).with_error_target(0.0);
        let plan = planner.plan(&job).expect("plans");
        assert_eq!(plan.backend, Backend::ClassicalRandomized);
    }

    #[test]
    fn classical_randomized_beats_deterministic_in_the_model() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 4096, 4, 7).with_error_target(0.0);
        let costs = planner.explain(&job).expect("valid job");
        let det = costs
            .iter()
            .find(|e| e.backend == Backend::ClassicalDeterministic)
            .unwrap();
        let rnd = costs
            .iter()
            .find(|e| e.backend == Backend::ClassicalRandomized)
            .unwrap();
        assert!(rnd.ops < det.ops);
    }

    #[test]
    fn hints_are_honoured_and_infeasible_hints_rejected() {
        let planner = Planner::new();
        let sv = SearchJob::new(0, 1 << 10, 4, 7).with_backend(BackendHint::StateVector);
        assert_eq!(planner.plan(&sv).unwrap().backend, Backend::StateVector);
        // The circuit path needs power-of-two dimensions...
        let not_pow2 = SearchJob::new(0, 96, 4, 7).with_backend(BackendHint::Circuit);
        assert!(planner.plan(&not_pow2).is_err());
        // ...and bounded size; the state vector is memory-capped too.
        let huge_circuit =
            SearchJob::new(0, MAX_CIRCUIT_N * 2, 4, 7).with_backend(BackendHint::Circuit);
        assert!(planner.plan(&huge_circuit).is_err());
        let huge_sv =
            SearchJob::new(0, MAX_STATEVECTOR_N * 2, 4, 7).with_backend(BackendHint::StateVector);
        assert!(planner.plan(&huge_sv).is_err());
        // The reduced simulator takes anything.
        let huge_reduced = SearchJob::new(0, 1 << 40, 64, 7).with_backend(BackendHint::Reduced);
        assert_eq!(
            planner.plan(&huge_reduced).unwrap().backend,
            Backend::Reduced
        );
    }

    #[test]
    fn explain_rejects_malformed_jobs_instead_of_panicking() {
        let planner = Planner::new();
        // k = 1 would trip SearchPlan's assertions if it reached schedule
        // construction (this was a reproducible panic in `--explain`).
        assert!(planner.explain(&SearchJob::new(0, 64, 1, 0)).is_err());
        assert!(planner.explain(&SearchJob::new(0, 6, 4, 0)).is_err());
        assert!(planner.explain(&SearchJob::new(0, 64, 4, 0)).is_ok());
    }

    #[test]
    fn cache_hits_on_repeated_keys_and_misses_on_fresh_ones() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 1 << 16, 8, 3);
        planner.plan(&job).unwrap();
        let after_first = planner.cache().stats();
        assert_eq!(after_first.misses, 1);
        assert_eq!(after_first.entries, 1);
        // Same (n, k, error_target): hit, even with different target/seed.
        planner.plan(&SearchJob::new(1, 1 << 16, 8, 999)).unwrap();
        let after_second = planner.cache().stats();
        assert_eq!(after_second.misses, 1);
        assert_eq!(after_second.hits, after_first.hits + 1);
        // Different K: miss.
        planner.plan(&SearchJob::new(2, 1 << 16, 4, 3)).unwrap();
        assert_eq!(planner.cache().stats().misses, 2);
    }

    #[test]
    fn cached_schedule_is_identical_to_a_fresh_computation() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 1 << 18, 16, 5);
        let first = planner.plan(&job).unwrap();
        let second = planner.plan(&job).unwrap();
        assert_eq!(first, second);
        let fresh = Planner::new().plan(&job).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn recursive_hint_plans_with_a_sensible_sv_cutoff() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 1 << 20, 4, 12345).with_backend(BackendHint::Recursive);
        let plan = planner.plan(&job).expect("plans");
        assert_eq!(plan.backend, Backend::Recursive);
        // The cutoff admits small exact levels but never a level whose
        // fused-sweep cost blows the per-level budget.
        assert!(plan.sv_cutoff >= 1 << 10, "cutoff {}", plan.sv_cutoff);
        assert!(plan.sv_cutoff <= 1 << 14, "cutoff {}", plan.sv_cutoff);
        assert!(plan.estimated_ops > 0.0);
        // Non-recursive plans carry no cutoff.
        let block = planner.plan(&SearchJob::new(1, 1 << 20, 4, 12345)).unwrap();
        assert_eq!(block.sv_cutoff, 0);
    }

    #[test]
    fn auto_never_routes_to_the_recursive_backend() {
        let planner = Planner::new();
        for n_exp in [10u32, 16, 24, 30] {
            let job = SearchJob::new(0, 1u64 << n_exp, 4, 7);
            let plan = planner.plan(&job).expect("plans");
            assert_ne!(
                plan.backend,
                Backend::Recursive,
                "full-address search must be explicit (n = 2^{n_exp})"
            );
        }
    }

    #[test]
    fn recursive_estimate_accumulates_per_level_error() {
        let planner = Planner::new();
        // A generous budget is met even accumulated over O(log N) levels...
        let generous = SearchJob::new(0, 1 << 18, 4, 5)
            .with_backend(BackendHint::Recursive)
            .with_error_target(0.2);
        assert!(planner.estimate_recursive(&generous).0.meets_error_target);
        // ...an impossible one is not (quantum levels keep a residual).
        let strict = generous.with_error_target(0.0);
        assert!(!planner.estimate_recursive(&strict).0.meets_error_target);
    }

    #[test]
    fn explain_includes_the_recursive_row() {
        let planner = Planner::new();
        let costs = planner
            .explain(&SearchJob::new(0, 1 << 16, 4, 3))
            .expect("valid job");
        assert_eq!(costs.len(), Backend::ALL.len());
        let recursive = costs
            .iter()
            .find(|e| e.backend == Backend::Recursive)
            .expect("recursive row present");
        assert!(recursive.feasible);
        let reduced = costs
            .iter()
            .find(|e| e.backend == Backend::Reduced)
            .unwrap();
        assert!(
            recursive.ops > reduced.ops,
            "resolving the full address costs more than one block query"
        );
    }

    #[test]
    fn noise_forces_the_statevector_backend() {
        use crate::spec::NoiseSpec;
        let planner = Planner::new();
        let noisy = NoiseSpec {
            depolarizing: 0.01,
            dephasing: 0.02,
            oracle_fault: 0.0,
        };
        // Auto routes to the state vector instead of the (cheaper) reduced
        // simulator.
        let job = SearchJob::new(0, 1 << 12, 4, 7).with_noise(noisy);
        assert_eq!(planner.plan(&job).unwrap().backend, Backend::StateVector);
        // An explicit state-vector hint still works; every other hint is a
        // structured rejection, not a silent noiseless run.
        assert_eq!(
            planner
                .plan(&job.with_backend(BackendHint::StateVector))
                .unwrap()
                .backend,
            Backend::StateVector
        );
        for hint in [
            BackendHint::Reduced,
            BackendHint::Circuit,
            BackendHint::ClassicalDeterministic,
            BackendHint::ClassicalRandomized,
            BackendHint::Recursive,
        ] {
            let err = planner.plan(&job.with_backend(hint)).unwrap_err();
            assert!(err.contains("noise"), "hint {hint:?}: {err}");
        }
        // Too large to materialise: feasibility still applies.
        let huge = SearchJob::new(0, MAX_STATEVECTOR_N * 2, 4, 7).with_noise(noisy);
        assert!(planner.plan(&huge).is_err());
        // An all-zero spec plans exactly like no spec at all.
        let ideal = SearchJob::new(0, 1 << 20, 8, 12345).with_noise(NoiseSpec::ideal());
        assert_eq!(planner.plan(&ideal).unwrap().backend, Backend::Reduced);
    }

    #[test]
    fn sparse_hint_runs_ideal_jobs_at_any_scale() {
        let planner = Planner::new();
        // Far beyond every dense ceiling: the sparse simulator has none.
        let huge = SearchJob::new(0, 1 << 40, 64, 7).with_backend(BackendHint::Sparse);
        let plan = planner.plan(&huge).expect("plans");
        assert_eq!(plan.backend, Backend::Sparse);
        // Auto never chooses it on ideal jobs: the reduced rotation form is
        // strictly cheaper (1 closed-form amplitude triple vs K + 2 classes).
        for n_exp in [10u32, 20, 30, 40] {
            let auto = planner
                .plan(&SearchJob::new(0, 1u64 << n_exp, 4, 7))
                .unwrap();
            assert_eq!(auto.backend, Backend::Reduced, "n = 2^{n_exp}");
        }
    }

    #[test]
    fn auto_selects_sparse_above_the_dense_ceiling_under_collapse_noise() {
        use crate::spec::NoiseSpec;
        let planner = Planner::new();
        let depol = NoiseSpec {
            depolarizing: 0.01,
            dephasing: 0.0,
            oracle_fault: 0.0,
        };
        // Below the dense ceiling Auto keeps the dense trajectories...
        let small = SearchJob::new(0, 1 << 12, 4, 7).with_noise(depol);
        assert_eq!(planner.plan(&small).unwrap().backend, Backend::StateVector);
        // ...above it, collapse-only noise routes to the sparse simulator
        // (this was a hard rejection before the sparse backend existed).
        let huge = SearchJob::new(0, 1 << 30, 64, 7).with_noise(depol);
        assert_eq!(planner.plan(&huge).unwrap().backend, Backend::Sparse);
        // An explicit sparse hint works there too.
        assert_eq!(
            planner
                .plan(&huge.with_backend(BackendHint::Sparse))
                .unwrap()
                .backend,
            Backend::Sparse
        );
        // Dephasing splits classes, so its map-degrade ceiling applies: Auto
        // and the explicit hint both reject above MAX_SPARSE_DEPHASING_N.
        let dephasing = NoiseSpec {
            depolarizing: 0.0,
            dephasing: 0.01,
            oracle_fault: 0.0,
        };
        let huge_dephasing = SearchJob::new(0, 1 << 30, 64, 7).with_noise(dephasing);
        assert!(planner.plan(&huge_dephasing).is_err());
        assert!(planner
            .plan(&huge_dephasing.with_backend(BackendHint::Sparse))
            .is_err());
        // At or below the ceiling the sparse hint carries dephasing fine.
        let capped = SearchJob::new(0, MAX_SPARSE_DEPHASING_N, 64, 7)
            .with_noise(dephasing)
            .with_backend(BackendHint::Sparse);
        assert_eq!(planner.plan(&capped).unwrap().backend, Backend::Sparse);
    }

    #[test]
    fn sparse_explain_row_charges_class_count_not_database_size() {
        let planner = Planner::new();
        let job = SearchJob::new(0, 1 << 20, 4, 3);
        let costs = planner.explain(&job).expect("valid job");
        let sparse = costs
            .iter()
            .find(|e| e.backend == Backend::Sparse)
            .expect("sparse row present");
        assert!(sparse.feasible);
        let schedule = planner.cache().schedule(job.n, job.k, job.error_target);
        let queries = schedule.plan.total_queries as f64;
        // Work term is the K + 2 canonical class bound...
        assert_eq!(
            sparse.ops,
            queries * (job.k as f64 + 2.0) * f64::from(job.trials) * SPARSE_CLASS_WEIGHT
        );
        // ...so blowing the database up by 2^10 at fixed K only moves the
        // score through the schedule's query count, not through N.
        let bigger = planner.explain(&SearchJob::new(0, 1 << 30, 4, 3)).unwrap();
        let sparse_bigger = bigger
            .iter()
            .find(|e| e.backend == Backend::Sparse)
            .unwrap();
        assert!(
            sparse_bigger.ops < sparse.ops * 64.0,
            "O(K) per query, not O(N)"
        );
        let sv = costs
            .iter()
            .find(|e| e.backend == Backend::StateVector)
            .unwrap();
        assert!(sparse.ops * 1e4 < sv.ops, "class work term is N-free");
    }

    #[test]
    fn schedule_prefers_untuned_when_it_meets_the_target() {
        // Generous target: the asymptotically optimal plan suffices.
        let generous = compute_schedule((1u64 << 20) as f64, 8.0, 0.05);
        assert!(!generous.tuned);
        assert!(generous.meets_error_target);
        // Tight (but reachable) target on a small database: tuning kicks in
        // (at N = 2^11, K = 2 the optimal-ε plan leaves ~2.6e-4 error while
        // the tuned plan reaches ~7e-8 at the same query count).
        let tight = compute_schedule(2048.0, 2.0, 1e-6);
        assert!(tight.tuned);
        assert!(tight.meets_error_target);
    }
}
