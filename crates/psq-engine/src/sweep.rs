//! Noise-sweep jobs: "success under noise" as one batched workload.
//!
//! A sweep takes one base job and a [`SweepSpec`] — value lists for the
//! noise rate `p`, the block count `K` and the error target `ε` — and
//! expands the cross product into ordinary [`SearchJob`]s, one per grid
//! point. Expansion is the whole trick: every point then flows through the
//! machinery that already exists for single jobs (planner and its schedule
//! cache, worker pool, scratch recycling, result cache, per-job seeding),
//! so a ten-thousand-point sweep costs no new execution code and inherits
//! every determinism guarantee. In particular:
//!
//! * point `i` gets id `base.id + i`, keeps the base seed, and is a pure
//!   function of `(base spec, grid values)` — the same sweep re-run, run on
//!   a different thread count, or chopped into arbitrary chunks by a front
//!   tier produces bit-identical per-point results;
//! * `p = 0` points carry an ideal effective spec and therefore plan,
//!   execute and cache exactly like their noiseless twins (the ideal-limit
//!   agreement the integration tests pin);
//! * sweeps sharing grid points — across requests or within one sweep after
//!   `K`/`ε` deduplication — share result-cache entries, since the cache
//!   key is the per-point job spec.
//!
//! [`Engine::run_sweep`] executes the expansion as one batch and fits, per
//! `(K, ε)` slice, the **degradation threshold**: the noise rate where the
//! success estimate first crosses 1/2 (linear interpolation between the
//! bracketing grid points), the single number that summarises "how much
//! noise this configuration tolerates".

use crate::executor::Engine;
use crate::metrics::BatchMetrics;
use crate::spec::{NoiseSpec, RejectedJob, SearchJob, SearchResult};
use serde::{Deserialize, Serialize};

/// Default cap on grid points per sweep at the serving layers (`psq-serve`
/// and `psq-router` admission): large enough for a dense 3-axis scan, small
/// enough that one request line cannot monopolise a worker for minutes.
pub const DEFAULT_MAX_SWEEP_POINTS: usize = 4096;

/// The grid of a sweep request: per-axis value lists. An empty axis means
/// "inherit the base job's value" (a singleton axis), so `{"p": [0.0,
/// 0.1]}` alone is a valid two-point sweep.
///
/// The swept rate `p` drives the noise channel named by `channel`
/// (`"depolarizing"` — the default — `"dephasing"`, `"oracle_fault"`, or
/// `"all"` for all three at once); channels the sweep does not drive keep
/// the base job's rates, so a sweep can scan dephasing on top of a fixed
/// oracle-fault floor.
///
/// `Deserialize` is hand-written: omitted axes mean "unswept" (the vendored
/// derive would demand every key), and unknown keys are rejected so a typo
/// like `"eps"` fails loudly instead of silently sweeping nothing.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Noise rates to scan (fastest-varying axis). Empty: the base job's
    /// own noise, unscanned.
    pub p: Vec<f64>,
    /// Block counts `K` to scan. Empty: the base job's `k`.
    pub k: Vec<u64>,
    /// Error targets `ε` to scan (slowest-varying axis). Empty: the base
    /// job's `error_target`.
    pub error: Vec<f64>,
    /// Which channel(s) the `p` axis drives; `None` means depolarizing.
    pub channel: Option<String>,
}

/// The channels a sweep's `p` axis can drive.
const CHANNELS: [&str; 4] = ["depolarizing", "dephasing", "oracle_fault", "all"];

impl serde::Deserialize for SweepSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let object = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for SweepSpec"))?;
        fn axis<T: serde::Deserialize>(
            object: &serde::Map,
            key: &'static str,
        ) -> Result<Vec<T>, serde::Error> {
            match object.get(key) {
                None | Some(serde::Value::Null) => Ok(Vec::new()),
                Some(value) => Vec::deserialize(value).map_err(|e| e.in_field(key)),
            }
        }
        for (key, _) in object.iter() {
            if !matches!(key.as_str(), "p" | "k" | "error" | "channel") {
                return Err(serde::Error::custom(format!(
                    "sweep: unknown field {key:?} (expected p, k, error, channel)"
                )));
            }
        }
        Ok(Self {
            p: axis(object, "p")?,
            k: axis(object, "k")?,
            error: axis(object, "error")?,
            channel: Option::deserialize(object.get("channel").unwrap_or(&serde::Value::Null))
                .map_err(|e: serde::Error| e.in_field("channel"))?,
        })
    }
}

impl SweepSpec {
    /// Grid size: the product of the axis lengths, empty axes counting as
    /// singletons. Never zero.
    pub fn point_count(&self) -> usize {
        self.p.len().max(1) * self.k.len().max(1) * self.error.len().max(1)
    }

    /// Checks the axes before expansion: every `p` must be a valid channel
    /// rate, the channel name must be known. Per-point `K`/`ε` validity is
    /// left to [`SearchJob::validate`] on the expanded jobs (it owns those
    /// rules).
    pub fn validate(&self) -> Result<(), String> {
        if let Some(channel) = &self.channel {
            if !CHANNELS.contains(&channel.as_str()) {
                return Err(format!(
                    "sweep: unknown channel {channel:?} (expected one of {CHANNELS:?})"
                ));
            }
        }
        for &p in &self.p {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("sweep: rate p = {p} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// The per-point noise spec: the base spec with the driven channel(s)
    /// set to `rate`.
    fn apply_rate(&self, base: NoiseSpec, rate: f64) -> NoiseSpec {
        let mut spec = base;
        match self.channel.as_deref() {
            None | Some("depolarizing") => spec.depolarizing = rate,
            Some("dephasing") => spec.dephasing = rate,
            Some("oracle_fault") => spec.oracle_fault = rate,
            Some("all") => {
                spec.depolarizing = rate;
                spec.dephasing = rate;
                spec.oracle_fault = rate;
            }
            Some(other) => unreachable!("validate() rejects channel {other:?}"),
        }
        spec
    }

    /// Expands the grid over `base` into one job per point, ids
    /// `base.id + index`, `p` varying fastest. The expansion is deliberately
    /// *just data* — callers decide where the jobs run — and deterministic:
    /// chunk the returned vector anywhere and the per-point jobs (hence
    /// results) are unchanged.
    pub fn expand(&self, base: &SearchJob) -> Result<Vec<SearchJob>, String> {
        self.validate()?;
        let base_noise = base.noise.unwrap_or_default();
        let ks: &[u64] = if self.k.is_empty() {
            &[base.k]
        } else {
            &self.k
        };
        let errors: &[f64] = if self.error.is_empty() {
            &[base.error_target]
        } else {
            &self.error
        };
        let mut jobs = Vec::with_capacity(self.point_count());
        for &error in errors {
            for &k in ks {
                let rates: &[f64] = if self.p.is_empty() {
                    &[f64::NAN] // sentinel: keep the base noise untouched
                } else {
                    &self.p
                };
                for &p in rates {
                    let mut job = *base;
                    job.id = base.id + jobs.len() as u64;
                    job.k = k;
                    job.error_target = error;
                    if !p.is_nan() {
                        job.noise = Some(self.apply_rate(base_noise, p));
                    }
                    jobs.push(job);
                }
            }
        }
        Ok(jobs)
    }
}

/// One executed grid point: the coordinates plus the full per-job result.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept rate (the base job's driven-channel rate when the `p` axis
    /// was empty).
    pub p: f64,
    /// Block count of this point.
    pub k: u64,
    /// Error target of this point.
    pub error_target: f64,
    /// The point's execution result (id `base.id + index`).
    pub result: SearchResult,
}

/// The fitted noise tolerance of one `(K, ε)` slice: where the success
/// estimate crosses 1/2 along the `p` axis.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradationThreshold {
    /// Block count of the slice.
    pub k: u64,
    /// Error target of the slice.
    pub error_target: f64,
    /// Interpolated `p` where success first drops through 1/2; `None` when
    /// the slice never crosses (still above 1/2 at the largest scanned `p`,
    /// or already below at the smallest).
    pub p_half: Option<f64>,
}

/// A fully executed sweep: per-point results in grid order, per-slice
/// fitted thresholds, and the underlying batch metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// One entry per grid point, `p` varying fastest (expansion order).
    pub points: Vec<SweepPoint>,
    /// Grid points whose expanded job failed validation or planning.
    pub rejected: Vec<RejectedJob>,
    /// One fitted threshold per `(K, ε)` slice, in slice order.
    pub thresholds: Vec<DegradationThreshold>,
    /// Batch metrics of the expansion's execution (cache hits across
    /// deduplicated points show up here).
    pub metrics: BatchMetrics,
}

impl Engine {
    /// Expands `spec` over `base` and executes the whole grid as one batch
    /// (planner, pool, scratch and result cache all shared), returning
    /// per-point results and the fitted degradation threshold of every
    /// `(K, ε)` slice. Pure function of `(base, spec)` up to wall times.
    pub fn run_sweep(&self, base: &SearchJob, spec: &SweepSpec) -> Result<SweepReport, String> {
        let jobs = spec.expand(base)?;
        let report = self.run_batch(&jobs);
        // Rejections skip result slots, so match results back to their grid
        // points by id (ids are base.id + index by construction).
        let mut results = report.results.iter().peekable();
        let mut points = Vec::with_capacity(jobs.len());
        for (index, job) in jobs.iter().enumerate() {
            let id = base.id + index as u64;
            debug_assert_eq!(job.id, id);
            if results.peek().is_some_and(|r| r.job_id == id) {
                let result = *results.next().expect("peeked");
                points.push(SweepPoint {
                    p: swept_rate(spec, job),
                    k: job.k,
                    error_target: job.error_target,
                    result,
                });
            }
        }
        let thresholds = fit_thresholds(&points);
        Ok(SweepReport {
            points,
            rejected: report.rejected,
            thresholds,
            metrics: report.metrics,
        })
    }
}

/// The `p` coordinate of an expanded job: the driven channel's rate (for
/// `"all"`, the shared rate).
fn swept_rate(spec: &SweepSpec, job: &SearchJob) -> f64 {
    let noise = job.noise.unwrap_or_default();
    match spec.channel.as_deref() {
        None | Some("depolarizing") | Some("all") => noise.depolarizing,
        Some("dephasing") => noise.dephasing,
        _ => noise.oracle_fault,
    }
}

/// Fits the 1/2-crossing of each `(K, ε)` slice by linear interpolation
/// between the bracketing grid points (points arrive in expansion order, so
/// each slice's points are contiguous and `p`-sorted iff the request's `p`
/// axis was sorted; the fit walks adjacent pairs either way).
fn fit_thresholds(points: &[SweepPoint]) -> Vec<DegradationThreshold> {
    let mut thresholds: Vec<DegradationThreshold> = Vec::new();
    let mut slice_start = 0;
    while slice_start < points.len() {
        let (k, error_target) = (points[slice_start].k, points[slice_start].error_target);
        let slice_end = points[slice_start..]
            .iter()
            .position(|pt| pt.k != k || pt.error_target != error_target)
            .map_or(points.len(), |offset| slice_start + offset);
        let slice = &points[slice_start..slice_end];
        let mut p_half = None;
        for pair in slice.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (sa, sb) = (a.result.success_estimate, b.result.success_estimate);
            if sa >= 0.5 && sb < 0.5 {
                // Linear interpolation; degenerate (vertical) brackets pin
                // to the left point.
                let t = if (sa - sb).abs() > f64::EPSILON {
                    (sa - 0.5) / (sa - sb)
                } else {
                    0.0
                };
                p_half = Some(a.p + t * (b.p - a.p));
                break;
            }
        }
        thresholds.push(DegradationThreshold {
            k,
            error_target,
            p_half,
        });
        slice_start = slice_end;
    }
    thresholds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::EngineConfig;
    use crate::spec::BackendHint;

    fn base_job() -> SearchJob {
        SearchJob::new(100, 1 << 9, 4, 77).with_trials(4)
    }

    #[test]
    fn expansion_covers_the_cross_product_in_order() {
        let spec = SweepSpec {
            p: vec![0.0, 0.1, 0.2],
            k: vec![4, 8],
            error: vec![0.05, 0.2],
            channel: None,
        };
        assert_eq!(spec.point_count(), 12);
        let jobs = spec.expand(&base_job()).expect("expands");
        assert_eq!(jobs.len(), 12);
        for (index, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, 100 + index as u64);
        }
        // p varies fastest, then k, then error.
        assert_eq!(jobs[1].noise.unwrap().depolarizing, 0.1);
        assert_eq!(jobs[0].k, jobs[2].k);
        assert_eq!(jobs[3].k, 8);
        assert_eq!(jobs[6].error_target, 0.2);
        // p = 0 points are effectively ideal (shared identity with the
        // noiseless twin at every layer).
        assert_eq!(jobs[0].effective_noise(), None);
        assert!(jobs[1].effective_noise().is_some());
    }

    #[test]
    fn empty_axes_inherit_the_base_job() {
        let base = base_job().with_error_target(0.07);
        let spec = SweepSpec {
            p: vec![0.0, 0.3],
            ..SweepSpec::default()
        };
        let jobs = spec.expand(&base).expect("expands");
        assert_eq!(jobs.len(), 2);
        assert!(jobs.iter().all(|j| j.k == base.k));
        assert!(jobs.iter().all(|j| j.error_target == 0.07));
        // No axes at all: one point, the base job itself (id included).
        let identity = SweepSpec::default().expand(&base).expect("expands");
        assert_eq!(identity, vec![base]);
    }

    #[test]
    fn channels_route_the_swept_rate() {
        let base = base_job();
        let pick = |channel: &str| SweepSpec {
            p: vec![0.25],
            channel: Some(channel.into()),
            ..SweepSpec::default()
        };
        let dephased = pick("dephasing").expand(&base).unwrap()[0].noise.unwrap();
        assert_eq!(dephased.dephasing, 0.25);
        assert_eq!(dephased.depolarizing, 0.0);
        let faulty = pick("oracle_fault").expand(&base).unwrap()[0]
            .noise
            .unwrap();
        assert_eq!(faulty.oracle_fault, 0.25);
        let all = pick("all").expand(&base).unwrap()[0].noise.unwrap();
        assert_eq!(
            all,
            NoiseSpec {
                depolarizing: 0.25,
                dephasing: 0.25,
                oracle_fault: 0.25
            }
        );
        // Undriven channels keep the base job's rates.
        let layered = pick("dephasing")
            .expand(&base.with_noise(NoiseSpec::oracle_only(0.1)))
            .unwrap()[0]
            .noise
            .unwrap();
        assert_eq!(layered.oracle_fault, 0.1);
        assert_eq!(layered.dephasing, 0.25);
        // Unknown channels and out-of-range rates are structured errors.
        assert!(pick("amplitude_damping").expand(&base).is_err());
        assert!(SweepSpec {
            p: vec![1.5],
            ..SweepSpec::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn run_sweep_is_deterministic_and_chunking_invariant() {
        let engine = Engine::new(EngineConfig {
            threads: Some(4),
            ..EngineConfig::default()
        });
        let base = base_job();
        let spec = SweepSpec {
            p: vec![0.0, 0.05, 0.4],
            k: vec![4, 8],
            channel: Some("all".into()),
            ..SweepSpec::default()
        };
        let report = engine.run_sweep(&base, &spec).expect("sweeps");
        assert_eq!(report.points.len(), 6);
        assert!(report.rejected.is_empty());
        // Re-running (warm cache, same threads) and running on a fresh
        // single-threaded engine both reproduce every deterministic field.
        let again = engine.run_sweep(&base, &spec).expect("sweeps");
        let solo = Engine::new(EngineConfig {
            threads: Some(1),
            ..EngineConfig::default()
        })
        .run_sweep(&base, &spec)
        .expect("sweeps");
        for ((a, b), c) in report.points.iter().zip(&again.points).zip(&solo.points) {
            assert_eq!(
                a.result.deterministic_fields(),
                b.result.deterministic_fields()
            );
            assert_eq!(
                a.result.deterministic_fields(),
                c.result.deterministic_fields()
            );
        }
        // Chunking invariance: running the expansion in arbitrary pieces
        // through run_batch gives the same per-point results.
        let jobs = spec.expand(&base).unwrap();
        let chunked = Engine::new(EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        });
        let mut chunk_results = Vec::new();
        for chunk in jobs.chunks(4) {
            chunk_results.extend(chunked.run_batch(chunk).results);
        }
        for (point, chunk) in report.points.iter().zip(&chunk_results) {
            assert_eq!(
                point.result.deterministic_fields(),
                chunk.deterministic_fields()
            );
        }
    }

    #[test]
    fn p_zero_points_bit_match_the_ideal_backend() {
        let engine = Engine::default();
        let base = base_job();
        let spec = SweepSpec {
            p: vec![0.0, 0.2],
            ..SweepSpec::default()
        };
        let report = engine.run_sweep(&base, &spec).expect("sweeps");
        let ideal = engine.run_job(&base).expect("ideal twin runs");
        let p0 = &report.points[0].result;
        let mut expected = ideal;
        expected.job_id = p0.job_id;
        assert_eq!(
            p0.deterministic_fields(),
            expected.deterministic_fields(),
            "p = 0 grid point must be the ideal backend's answer"
        );
    }

    #[test]
    fn thresholds_interpolate_the_half_crossing() {
        let engine = Engine::default();
        let base = base_job().with_trials(16);
        let spec = SweepSpec {
            p: vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.95],
            channel: Some("all".into()),
            ..SweepSpec::default()
        };
        let report = engine.run_sweep(&base, &spec).expect("sweeps");
        assert_eq!(report.thresholds.len(), 1);
        let fit = report.thresholds[0];
        assert_eq!(fit.k, base.k);
        let p_half = fit.p_half.expect("heavy noise must cross 1/2");
        assert!(
            (0.0..=0.95).contains(&p_half),
            "crossing inside the scanned range, got {p_half}"
        );
        // The success profile the fit ran on starts near ideal and ends
        // scrambled.
        let first = report.points.first().unwrap().result.success_estimate;
        let last = report.points.last().unwrap().result.success_estimate;
        assert!(first > 0.9, "p = 0 success {first}");
        assert!(last < 0.5, "p = 0.95 success {last}");
        // A sweep that never degrades fits no crossing.
        let gentle = engine
            .run_sweep(
                &base,
                &SweepSpec {
                    p: vec![0.0, 0.01],
                    ..SweepSpec::default()
                },
            )
            .expect("sweeps");
        assert_eq!(gentle.thresholds[0].p_half, None);
    }

    #[test]
    fn infeasible_points_reject_without_sinking_the_sweep() {
        let engine = Engine::default();
        // k = 3 does not divide 512: those grid points reject, the rest run.
        let spec = SweepSpec {
            p: vec![0.0, 0.1],
            k: vec![4, 3],
            ..SweepSpec::default()
        };
        let report = engine.run_sweep(&base_job(), &spec).expect("sweeps");
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.rejected.len(), 2);
        assert!(report.points.iter().all(|pt| pt.k == 4));
        // Backends that cannot host noise reject the noisy points but keep
        // the p = 0 ones.
        let hinted = engine
            .run_sweep(
                &base_job().with_backend(BackendHint::Reduced),
                &SweepSpec {
                    p: vec![0.0, 0.1],
                    ..SweepSpec::default()
                },
            )
            .expect("sweeps");
        assert_eq!(hinted.points.len(), 1);
        assert_eq!(hinted.rejected.len(), 1);
    }

    #[test]
    fn wire_sweeps_may_omit_axes_but_not_misspell_them() {
        let spec: SweepSpec = serde_json::from_str(r#"{"p":[0.0,0.1],"k":[4,8]}"#).expect("parses");
        assert_eq!(spec.p, vec![0.0, 0.1]);
        assert_eq!(spec.k, vec![4, 8]);
        assert!(spec.error.is_empty());
        assert_eq!(spec.channel, None);
        assert_eq!(spec.point_count(), 4);
        let empty: SweepSpec = serde_json::from_str("{}").expect("parses");
        assert_eq!(empty, SweepSpec::default());
        // Typos fail loudly instead of silently sweeping nothing.
        assert!(serde_json::from_str::<SweepSpec>(r#"{"eps":[0.1]}"#).is_err());
        assert!(serde_json::from_str::<SweepSpec>(r#"{"p":0.1}"#).is_err());
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let engine = Engine::default();
        let spec = SweepSpec {
            p: vec![0.0, 0.3],
            ..SweepSpec::default()
        };
        let report = engine.run_sweep(&base_job(), &spec).expect("sweeps");
        let json = serde_json::to_string(&report).expect("serialise");
        let back: SweepReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(report, back);
        let spec_json = serde_json::to_string(&spec).expect("serialise");
        let spec_back: SweepSpec = serde_json::from_str(&spec_json).expect("deserialise");
        assert_eq!(spec, spec_back);
    }
}
