//! Single-job execution on each backend.
//!
//! Every runner here is a pure function of `(job, schedule)`: the job's seed
//! drives a private `StdRng`, so re-running a job — on one thread or many —
//! produces bit-identical results. The reported block is a majority vote
//! over trials (ties to the lowest block index), so a multi-trial job gives
//! a deterministic single answer.
//!
//! Query accounting matches the instrumented-oracle convention used across
//! the workspace: each trial charges its own oracle calls, and the result
//! sums them.

use crate::planner::ExecutionPlan;
use crate::spec::{Backend, NoiseSpec, SearchJob, SearchResult};
use psq_partial::recursive::{derive_seed, sample_symmetric_block};
use psq_partial::{
    partial_search_noisy_in, partial_search_noisy_sparse, PartialSearch, RecursiveSearch,
};
use psq_sim::circuit::{block_iteration_via_circuit, grover_iteration_via_circuit, Step3Circuit};
use psq_sim::gates::QubitRegister;
use psq_sim::oracle::{Database, Partition};
use psq_sim::scratch::AmplitudeScratch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Executes `job` on the backend resolved in `plan`. Wall time is filled in
/// by the executor; this function returns it as zero.
pub fn execute(job: &SearchJob, plan: &ExecutionPlan) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(job.seed);
    match plan.backend {
        Backend::Reduced => run_reduced(job, plan, &mut rng),
        // Non-ideal noise runs the trajectory variant of the state-vector
        // path; an explicit all-zero spec falls through to the untouched
        // ideal runner, which is what makes p = 0 bit-identical to ideal.
        Backend::StateVector => match job.effective_noise() {
            Some(spec) => run_noisy(job, plan, spec),
            None => run_statevector(job, plan, &mut rng),
        },
        Backend::Circuit => run_circuit(job, plan, &mut rng),
        Backend::ClassicalDeterministic => run_classical(job, false, &mut rng),
        Backend::ClassicalRandomized => run_classical(job, true, &mut rng),
        Backend::Recursive => run_recursive(job, plan),
        // Same noise split as the state-vector arm: non-ideal specs run the
        // per-query sparse trajectories, an explicit all-zero spec is the
        // ideal closed-form evolution.
        Backend::Sparse => match job.effective_noise() {
            Some(spec) => run_sparse_noisy(job, plan, spec),
            None => run_sparse(job, plan, &mut rng),
        },
    }
}

/// Majority vote with ties to the lowest block index.
fn majority_block(reported: &[u64]) -> u64 {
    let mut best_block = u64::MAX;
    let mut best_count = 0usize;
    for &candidate in reported {
        let count = reported.iter().filter(|&&b| b == candidate).count();
        if count > best_count || (count == best_count && candidate < best_block) {
            best_count = count;
            best_block = candidate;
        }
    }
    best_block
}

fn finish(
    job: &SearchJob,
    backend: Backend,
    reported: Vec<u64>,
    true_block: u64,
    queries: u64,
    success_estimate: f64,
) -> SearchResult {
    let trials_correct = reported.iter().filter(|&&b| b == true_block).count() as u32;
    let block_found = majority_block(&reported);
    SearchResult {
        job_id: job.id,
        backend,
        block_found,
        true_block,
        correct: block_found == true_block,
        address_found: None,
        levels: 0,
        queries,
        success_estimate,
        trials: job.trials,
        trials_correct,
        wall_time_us: 0.0,
    }
}

thread_local! {
    /// Worker-held plane buffers for the recursive and noisy runners:
    /// executor workers are persistent threads, so the scratch is reused
    /// across every level, trial *and job* a worker executes — steady-state
    /// batch serving performs O(1) allocations per worker. Scratch contents
    /// never affect results (pinned by the cross-thread bit-identity tests).
    static WORKER_SCRATCH: std::cell::RefCell<AmplitudeScratch> =
        std::cell::RefCell::new(AmplitudeScratch::new());
}

/// The noisy state-vector runner: each trial replays the three-step
/// algorithm as one quantum trajectory under the job's per-query channels
/// ([`psq_partial::robustness`]). Trial `t` draws everything — noise events
/// *and* the final block measurement — from a private
/// `StdRng::seed_from_u64(derive_seed(job.seed, t))` stream, so the result
/// is a pure function of `(spec, seed)` no matter which worker thread, batch
/// chunk or sweep expansion the job arrived through.
fn run_noisy(job: &SearchJob, plan: &ExecutionPlan, spec: NoiseSpec) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let true_block = partition.block_of(job.target);
    let search = PartialSearch::with_epsilon(plan.schedule.plan.epsilon);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    let mut success_sum = 0.0;
    WORKER_SCRATCH.with(|cell| {
        let scratch = &mut cell.borrow_mut();
        for trial in 0..job.trials {
            let mut rng = StdRng::seed_from_u64(derive_seed(job.seed, u64::from(trial)));
            let db = Database::new(job.n, job.target);
            let run = partial_search_noisy_in(&db, &partition, &search, spec, &mut rng, scratch);
            queries += run.queries;
            // Mean over trials: unlike the ideal path, each trajectory has
            // its own pre-measurement block probability (noise events moved
            // the state), so the estimate is the empirical mean.
            success_sum += run.success_probability;
            reported.push(run.reported_block);
        }
    });
    finish(
        job,
        Backend::StateVector,
        reported,
        true_block,
        queries,
        success_sum / f64::from(job.trials),
    )
}

/// The recursive full-address runner: iterated partial search resolves one
/// block of address bits per level (`psq_partial::recursive`), with the
/// planner's `sv_cutoff` deciding which levels run the exact state-vector
/// kernels. Trials vote on the *exact address* (majority, ties to the
/// lowest) and `correct` means the full address was right.
///
/// Every level executes the finite-`N` tuned plan — the lowest achievable
/// per-level error at a few extra queries — so, as with every other
/// explicit backend hint, `error_target` does not reshape execution; it
/// feeds the planner's `meets_error_target` verdict (visible through
/// `--explain`), which for this backend reflects the error *accumulated*
/// across all `O(log N)` levels.
fn run_recursive(job: &SearchJob, plan: &ExecutionPlan) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let true_block = partition.block_of(job.target);
    let search = RecursiveSearch::new(job.n, job.k).with_statevector_cutoff(plan.sv_cutoff);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    let mut levels = 0u32;
    let mut success_sum = 0.0;
    WORKER_SCRATCH.with(|cell| {
        let scratch = &mut cell.borrow_mut();
        for trial in 0..job.trials {
            // Per-trial seeds derive from the job seed exactly as per-level
            // seeds derive from the trial seed: the whole job is a pure
            // function of its spec.
            let trial_seed = derive_seed(job.seed, u64::from(trial));
            let outcome = search.run_seeded(job.n, job.target, trial_seed, scratch);
            queries += outcome.outcome.queries;
            levels += outcome.quantum_levels();
            success_sum += outcome.success_estimate;
            reported.push(outcome.outcome.reported_target);
        }
    });
    // Mean over trials: per-level success probabilities are properties of
    // the level shapes, but a lost descent records plan predictions where a
    // found one records simulated values, so trials can differ marginally.
    let success = success_sum / f64::from(job.trials);
    let address = majority_block(&reported);
    let trials_correct = reported.iter().filter(|&&a| a == job.target).count() as u32;
    SearchResult {
        job_id: job.id,
        backend: Backend::Recursive,
        block_found: partition.block_of(address),
        true_block,
        // Full-address semantics: the stricter exact-address criterion.
        correct: address == job.target,
        address_found: Some(address),
        levels,
        queries,
        success_estimate: success,
        trials: job.trials,
        trials_correct,
        wall_time_us: 0.0,
    }
}

fn run_reduced(job: &SearchJob, plan: &ExecutionPlan, rng: &mut StdRng) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let true_block = partition.block_of(job.target);
    // The reduced dynamics are target-independent given the block structure;
    // one evolution serves every trial.
    let search = PartialSearch::with_epsilon(plan.schedule.plan.epsilon);
    let run = search.run_reduced(job.n as f64, job.k as f64);
    let reported: Vec<u64> = (0..job.trials)
        .map(|_| sample_symmetric_block(run.success_probability, true_block, job.k, rng))
        .collect();
    finish(
        job,
        Backend::Reduced,
        reported,
        true_block,
        run.queries * u64::from(job.trials),
        run.success_probability,
    )
}

/// The ideal sparse runner. The class dynamics are block-symmetric — ideal
/// evolution never leaves the three-amplitude symmetric representation — so,
/// exactly as in [`run_reduced`], one evolution serves every trial and the
/// per-trial block samples draw from the job-seed stream. All deterministic
/// result fields are therefore bit-identical to the reduced backend's; only
/// the backend tag differs.
fn run_sparse(job: &SearchJob, plan: &ExecutionPlan, rng: &mut StdRng) -> SearchResult {
    let true_block = job.target / (job.n / job.k);
    let search = PartialSearch::with_epsilon(plan.schedule.plan.epsilon);
    let run = search.run_sparse(job.n, job.k, job.target);
    let reported: Vec<u64> = (0..job.trials)
        .map(|_| sample_symmetric_block(run.success_probability, true_block, job.k, rng))
        .collect();
    finish(
        job,
        Backend::Sparse,
        reported,
        true_block,
        run.queries * u64::from(job.trials),
        run.success_probability,
    )
}

/// The noisy sparse runner: per-trial trajectories seeded exactly like
/// [`run_noisy`]'s (`derive_seed(job.seed, trial)`), and the sparse
/// trajectory runner mirrors the dense one's draw order event for event —
/// so on any `n` both backends can serve, the reported blocks and query
/// counts agree exactly and the success estimates agree to rounding.
fn run_sparse_noisy(job: &SearchJob, plan: &ExecutionPlan, spec: NoiseSpec) -> SearchResult {
    let true_block = job.target / (job.n / job.k);
    let search = PartialSearch::with_epsilon(plan.schedule.plan.epsilon);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    let mut success_sum = 0.0;
    for trial in 0..job.trials {
        let mut rng = StdRng::seed_from_u64(derive_seed(job.seed, u64::from(trial)));
        let run = partial_search_noisy_sparse(job.n, job.k, job.target, &search, spec, &mut rng);
        queries += run.queries;
        success_sum += run.success_probability;
        reported.push(run.reported_block);
    }
    finish(
        job,
        Backend::Sparse,
        reported,
        true_block,
        queries,
        success_sum / f64::from(job.trials),
    )
}

fn run_statevector(job: &SearchJob, plan: &ExecutionPlan, rng: &mut StdRng) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let search = PartialSearch::with_epsilon(plan.schedule.plan.epsilon);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    let mut success = 0.0;
    for _ in 0..job.trials {
        let db = Database::new(job.n, job.target);
        let run = search.run_statevector(&db, &partition, rng);
        queries += run.outcome.queries;
        success = run.success_probability;
        reported.push(run.outcome.reported_block);
    }
    let true_block = partition.block_of(job.target);
    finish(
        job,
        Backend::StateVector,
        reported,
        true_block,
        queries,
        success,
    )
}

fn run_circuit(job: &SearchJob, plan: &ExecutionPlan, rng: &mut StdRng) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let true_block = partition.block_of(job.target);
    let schedule = plan.schedule.plan;
    let qubits = psq_math::bits::log2_exact(job.n);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    let mut success = 0.0;
    // One register and one Step-3 scratch for the whole job: gates apply in
    // place, so a multi-trial run performs O(1) allocations total.
    let mut register = QubitRegister::uniform(qubits);
    let mut scratch = AmplitudeScratch::with_capacity(job.n as usize);
    for trial in 0..job.trials {
        if trial > 0 {
            register.reset_uniform();
        }
        let db = Database::new(job.n, job.target);
        for _ in 0..schedule.l1 {
            grover_iteration_via_circuit(&mut register, &db);
        }
        for _ in 0..schedule.l2 {
            block_iteration_via_circuit(&mut register, &db, &partition);
        }
        let step3 = Step3Circuit::apply_with_scratch(register.state(), &db, &mut scratch);
        success = step3.block_probability(&partition, true_block);
        // Sample the address-register measurement from the circuit's exact
        // distribution (inverse-CDF walk, as in `psq_sim::measure`).
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut address = job.n - 1;
        for x in 0..job.n {
            acc += step3.address_probability(x as usize);
            if u < acc {
                address = x;
                break;
            }
        }
        reported.push(partition.block_of(address));
        queries += db.queries();
        step3.recycle(&mut scratch);
    }
    finish(
        job,
        Backend::Circuit,
        reported,
        true_block,
        queries,
        success,
    )
}

fn run_classical(job: &SearchJob, randomized: bool, rng: &mut StdRng) -> SearchResult {
    let partition = Partition::new(job.n, job.k);
    let true_block = partition.block_of(job.target);
    let mut reported = Vec::with_capacity(job.trials as usize);
    let mut queries = 0u64;
    for _ in 0..job.trials {
        let db = Database::new(job.n, job.target);
        let outcome = if randomized {
            psq_classical::randomized_partial(&db, &partition, rng)
        } else {
            psq_classical::deterministic_partial(&db, &partition)
        };
        queries += outcome.queries;
        reported.push(outcome.reported_block);
    }
    let trials_correct = reported.iter().filter(|&&b| b == true_block).count() as u32;
    let backend = if randomized {
        Backend::ClassicalRandomized
    } else {
        Backend::ClassicalDeterministic
    };
    // Classical block-exclusion search is zero-error by construction, which
    // the empirical frequency reflects.
    let success = f64::from(trials_correct) / f64::from(job.trials);
    finish(job, backend, reported, true_block, queries, success)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use crate::spec::BackendHint;

    fn run(job: SearchJob) -> SearchResult {
        let planner = Planner::new();
        let plan = planner.plan(&job).expect("job plans");
        execute(&job, &plan)
    }

    #[test]
    fn majority_vote_breaks_ties_low() {
        assert_eq!(majority_block(&[3]), 3);
        assert_eq!(majority_block(&[2, 2, 5]), 2);
        assert_eq!(majority_block(&[5, 2]), 2);
        assert_eq!(majority_block(&[7, 7, 1, 1, 1]), 1);
    }

    #[test]
    fn every_backend_finds_the_block() {
        for hint in [
            BackendHint::Reduced,
            BackendHint::StateVector,
            BackendHint::Circuit,
            BackendHint::ClassicalDeterministic,
            BackendHint::ClassicalRandomized,
            BackendHint::Recursive,
            BackendHint::Sparse,
        ] {
            let result = run(SearchJob::new(0, 1 << 9, 4, 100).with_backend(hint));
            assert!(result.correct, "{hint:?} failed: {result:?}");
            assert!(result.queries > 0);
        }
    }

    #[test]
    fn recursive_backend_resolves_the_full_address() {
        for &target in &[0u64, 1, 4095, 2500] {
            let result = run(SearchJob::full_address(0, 1 << 12, 4, target));
            assert_eq!(result.backend, Backend::Recursive);
            assert_eq!(result.address_found, Some(target));
            assert_eq!(result.block_found, target / (1 << 10));
            assert!(result.correct);
            assert!(result.levels >= 3, "descends several levels");
            assert!(result.success_estimate > 0.95);
            // The whole descent stays far below classical N/2 probes.
            assert!(result.queries < 1 << 10);
        }
        // Block backends never claim an address.
        let block = run(SearchJob::new(0, 1 << 12, 4, 2500));
        assert_eq!(block.address_found, None);
        assert_eq!(block.levels, 0);
    }

    #[test]
    fn recursive_trials_vote_on_the_address_and_accumulate() {
        let one = run(SearchJob::full_address(0, 1 << 12, 4, 99).with_trials(1));
        let three = run(SearchJob::full_address(0, 1 << 12, 4, 99).with_trials(3));
        assert_eq!(three.trials, 3);
        // One trial may lose the descent (the per-level residual is real);
        // the majority vote still lands on the exact address.
        assert!(three.trials_correct >= 2);
        assert!(three.correct);
        assert_eq!(three.address_found, Some(99));
        assert_eq!(three.levels, 3 * one.levels);
        // Per-trial seeds differ, so probe tails may differ slightly; the
        // quantum level counts are identical per trial.
        assert!(three.queries >= 2 * one.queries);
    }

    #[test]
    fn execution_is_bit_identical_per_seed() {
        for hint in [
            BackendHint::Reduced,
            BackendHint::StateVector,
            BackendHint::Circuit,
            BackendHint::ClassicalRandomized,
            BackendHint::Recursive,
            BackendHint::Sparse,
        ] {
            let job = SearchJob::new(3, 1 << 8, 4, 77)
                .with_backend(hint)
                .with_trials(3);
            let a = run(job);
            let b = run(job);
            assert_eq!(a, b, "{hint:?} not deterministic");
            // Quantum schedules are fixed by the plan, so their query count
            // cannot depend on the seed (the classical randomized scan's
            // probe count legitimately does, as does the recursive descent's
            // brute-force tail through the sampled block path).
            if hint != BackendHint::ClassicalRandomized && hint != BackendHint::Recursive {
                let other_seed = run(job.with_seed(job.seed ^ 1));
                assert_eq!(
                    a.queries, other_seed.queries,
                    "queries are seed-independent"
                );
            }
        }
    }

    #[test]
    fn quantum_backends_agree_on_success_probability() {
        let n = 1u64 << 10;
        let k = 4u64;
        let reduced = run(SearchJob::new(0, n, k, 9).with_backend(BackendHint::Reduced));
        let sv = run(SearchJob::new(0, n, k, 9).with_backend(BackendHint::StateVector));
        // Reduced and state-vector implement the identical reflection
        // sequence; the circuit path's Step 3 differs by O(1/N) within the
        // target block (see psq-sim's circuit tests).
        assert!((reduced.success_estimate - sv.success_estimate).abs() < 1e-9);
        let circuit = run(SearchJob::new(0, n, k, 9).with_backend(BackendHint::Circuit));
        assert!((circuit.success_estimate - sv.success_estimate).abs() < 5e-3);
        assert_eq!(reduced.queries, sv.queries);
        assert_eq!(sv.queries, circuit.queries);
    }

    #[test]
    fn noisy_execution_is_deterministic_and_degrades_with_rate() {
        let base = SearchJob::new(11, 1 << 9, 4, 42).with_trials(8);
        let gentle = run(base.with_noise(NoiseSpec {
            depolarizing: 0.02,
            dephasing: 0.02,
            oracle_fault: 0.02,
        }));
        assert_eq!(gentle.backend, Backend::StateVector);
        assert_eq!(gentle, run(base.with_noise(gentle_spec())));
        // Heavy depolarizing scrambles most trajectories: mean success drops
        // well below the gentle run's.
        let heavy = run(base.with_noise(NoiseSpec {
            depolarizing: 0.9,
            dephasing: 0.0,
            oracle_fault: 0.0,
        }));
        assert!(
            heavy.success_estimate < gentle.success_estimate,
            "heavy {} vs gentle {}",
            heavy.success_estimate,
            gentle.success_estimate
        );
        // An all-zero spec is byte-for-byte the ideal state-vector run.
        let ideal = run(base.with_backend(BackendHint::StateVector));
        let zero = run(base
            .with_backend(BackendHint::StateVector)
            .with_noise(NoiseSpec::ideal()));
        assert_eq!(ideal, zero);
    }

    fn gentle_spec() -> NoiseSpec {
        NoiseSpec {
            depolarizing: 0.02,
            dephasing: 0.02,
            oracle_fault: 0.02,
        }
    }

    #[test]
    fn sparse_mirrors_reduced_on_every_deterministic_field() {
        let base = SearchJob::new(0, 1 << 12, 4, 777).with_trials(5);
        let reduced = run(base.with_backend(BackendHint::Reduced));
        let sparse = run(base.with_backend(BackendHint::Sparse));
        assert_eq!(sparse.backend, Backend::Sparse);
        // Same evolution (by delegation), same job-seed sample stream: every
        // field but the backend tag is bit-identical.
        assert_eq!(sparse.block_found, reduced.block_found);
        assert_eq!(sparse.true_block, reduced.true_block);
        assert_eq!(sparse.queries, reduced.queries);
        assert_eq!(sparse.trials_correct, reduced.trials_correct);
        assert_eq!(
            sparse.success_estimate.to_bits(),
            reduced.success_estimate.to_bits()
        );
    }

    #[test]
    fn sparse_serves_ideal_jobs_far_beyond_the_dense_ceiling() {
        let n = 1u64 << 30;
        let job = SearchJob::new(7, n, 64, n - 5).with_backend(BackendHint::Sparse);
        let result = run(job);
        assert_eq!(result.backend, Backend::Sparse);
        assert!(result.correct, "{result:?}");
        assert_eq!(result.true_block, 63);
        assert!(result.success_estimate > 0.9);
        // Queries scale as O(√N·(1 − 1/√K)-ish savings), far below N.
        assert!(result.queries < 1 << 16);
    }

    #[test]
    fn sparse_noisy_execution_matches_the_dense_trajectories() {
        let spec = NoiseSpec {
            depolarizing: 0.05,
            dephasing: 0.05,
            oracle_fault: 0.05,
        };
        let base = SearchJob::new(9, 1 << 9, 4, 300)
            .with_trials(6)
            .with_noise(spec);
        let dense = run(base.with_backend(BackendHint::StateVector));
        let sparse = run(base.with_backend(BackendHint::Sparse));
        assert_eq!(dense.backend, Backend::StateVector);
        assert_eq!(sparse.backend, Backend::Sparse);
        // Identical per-trial seed streams and draw orders: decisions and
        // query counts agree exactly, probabilities to summation rounding.
        assert_eq!(sparse.block_found, dense.block_found);
        assert_eq!(sparse.queries, dense.queries);
        assert_eq!(sparse.trials_correct, dense.trials_correct);
        assert!(
            (sparse.success_estimate - dense.success_estimate).abs() < 1e-12,
            "sparse {} vs dense {}",
            sparse.success_estimate,
            dense.success_estimate
        );
        // And the noisy sparse path is bit-stable under re-execution.
        assert_eq!(sparse, run(base.with_backend(BackendHint::Sparse)));
    }

    #[test]
    fn sparse_noisy_execution_runs_where_dense_cannot() {
        let spec = NoiseSpec {
            depolarizing: 0.01,
            dephasing: 0.0,
            oracle_fault: 0.01,
        };
        let n = 1u64 << 26; // 16× the dense ceiling
        let job = SearchJob::new(4, n, 16, 12_345)
            .with_trials(3)
            .with_noise(spec);
        let result = run(job); // Auto routes to sparse above the ceiling
        assert_eq!(result.backend, Backend::Sparse);
        assert!(result.queries > 0);
        assert!(result.success_estimate > 0.0);
        assert_eq!(result, run(job));
    }

    #[test]
    fn trials_accumulate_queries() {
        let one = run(SearchJob::new(0, 1 << 12, 8, 5).with_trials(1));
        let three = run(SearchJob::new(0, 1 << 12, 8, 5).with_trials(3));
        assert_eq!(three.queries, 3 * one.queries);
        assert_eq!(three.trials, 3);
    }
}
