//! Serializable job and result specifications — the engine's wire format.
//!
//! A [`SearchJob`] describes one partial-search request the way a client
//! would pose it: database size `N`, block count `K`, an acceptable
//! probability of reporting a wrong block (`error_target`), how many trials
//! to run, a seed making the whole execution reproducible, and an optional
//! backend hint. A [`SearchResult`] is what the engine sends back: the block
//! it found, the exact query count charged by the instrumented oracle, a
//! success estimate, and the wall time the job took inside the executor.

use serde::{Deserialize, Serialize};

// The one noise-configuration type for the whole stack (defined in
// `psq_sim::noise`, unified with the Monte-Carlo runner in
// `psq_partial::robustness`, carried on the wire by [`SearchJob`]).
pub use psq_partial::NoiseSpec;

/// Which execution backend a job *asks* for. [`BackendHint::Auto`] delegates
/// the choice to the planner's cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendHint {
    /// Let the planner pick the cheapest faithful backend.
    Auto,
    /// The block-symmetric reduced simulator (`psq-sim::reduced`).
    Reduced,
    /// The full state-vector simulator.
    StateVector,
    /// The gate-level circuit path (`psq-sim::circuit`).
    Circuit,
    /// Classical deterministic block-exclusion scan (zero error).
    ClassicalDeterministic,
    /// Classical randomized block-exclusion scan (zero error).
    ClassicalRandomized,
    /// Recursive full-address search (`psq_partial::recursive`): iterated
    /// partial search resolves the *entire* address, one block of bits per
    /// level, rather than just the top-level block. A full-address job; the
    /// result carries `address_found`. Never chosen by `Auto` — it answers
    /// a different question than a block query.
    Recursive,
    /// The sparse value-class simulator (`psq-sim::sparse`): exact huge-`N`
    /// dynamics in `O(#classes)` per iteration, including noisy
    /// trajectories the reduced form cannot express.
    Sparse,
}

/// The backend a job actually *ran on* (the planner's resolution of the
/// hint). Ordered in planner-consideration order so per-backend maps (e.g.
/// `BatchMetrics::backend_latency`) iterate and serialise stably.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Block-symmetric reduced simulator: `O(√N)` work for any `N`.
    Reduced,
    /// Full state-vector simulator: `O(√N · N)` work, exact amplitudes.
    StateVector,
    /// Gate-level circuit path: like the state vector with a gate-by-gate
    /// constant factor; requires power-of-two dimensions.
    Circuit,
    /// Deterministic classical scan: zero error, `N(1 − 1/K)` worst case.
    ClassicalDeterministic,
    /// Randomized classical scan: zero error, `N/2·(1 − 1/K²)` expected.
    ClassicalRandomized,
    /// Recursive full-address search: `O(log N)` partial-search levels, each
    /// on a database `K` times smaller, totalling `α_K·√N·√K/(√K − 1)`
    /// queries plus an `O(N^{1/3})` brute-force tail. Resolves the exact
    /// address, not just the block.
    Recursive,
    /// Sparse value-class simulator: one `(value, population)` entry per
    /// amplitude-equivalence class, `O(#classes)` work per iteration at any
    /// `N` — the exact backend for huge-`N` jobs, with or without
    /// (class-splitting) noise. Appended after [`Backend::Recursive`] so
    /// existing per-backend indices, orderings and serialisations are
    /// untouched.
    Sparse,
}

impl Backend {
    /// All backends, in the order the planner considers them.
    pub const ALL: [Backend; 7] = [
        Backend::Reduced,
        Backend::StateVector,
        Backend::Circuit,
        Backend::ClassicalDeterministic,
        Backend::ClassicalRandomized,
        Backend::Recursive,
        Backend::Sparse,
    ];

    /// The backends `Auto` chooses between: every backend that answers the
    /// *block* question. [`Backend::Recursive`] is excluded — it resolves
    /// the full address, a strictly more expensive (and semantically
    /// different) request that clients must ask for explicitly.
    pub const AUTO_CANDIDATES: [Backend; 6] = [
        Backend::Reduced,
        Backend::StateVector,
        Backend::Circuit,
        Backend::ClassicalDeterministic,
        Backend::ClassicalRandomized,
        Backend::Sparse,
    ];

    /// Stable lower-case label used in metrics tallies.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Reduced => "reduced",
            Backend::StateVector => "statevector",
            Backend::Circuit => "circuit",
            Backend::ClassicalDeterministic => "classical_deterministic",
            Backend::ClassicalRandomized => "classical_randomized",
            Backend::Recursive => "recursive",
            Backend::Sparse => "sparse",
        }
    }

    /// This backend's position in [`Backend::ALL`] (dense indexing for
    /// per-backend arrays such as the engine's latency histograms).
    pub fn index(self) -> usize {
        match self {
            Backend::Reduced => 0,
            Backend::StateVector => 1,
            Backend::Circuit => 2,
            Backend::ClassicalDeterministic => 3,
            Backend::ClassicalRandomized => 4,
            Backend::Recursive => 5,
            Backend::Sparse => 6,
        }
    }

    /// The `execute:<backend>` stage label this backend's execution spans
    /// carry on the NDJSON trace stream.
    pub fn stage_label(self) -> &'static str {
        match self {
            Backend::Reduced => "execute:reduced",
            Backend::StateVector => "execute:statevector",
            Backend::Circuit => "execute:circuit",
            Backend::ClassicalDeterministic => "execute:classical_deterministic",
            Backend::ClassicalRandomized => "execute:classical_randomized",
            Backend::Recursive => "execute:recursive",
            Backend::Sparse => "execute:sparse",
        }
    }
}

/// One partial-search request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchJob {
    /// Client-chosen identifier, echoed in the result.
    pub id: u64,
    /// Database size `N` (items).
    pub n: u64,
    /// Number of equal blocks `K`; the answer is the block index.
    pub k: u64,
    /// Address of the marked item (defines the oracle; never read by the
    /// planner — plans depend only on `(N, K, error_target)`).
    pub target: u64,
    /// Acceptable probability of reporting a wrong block. Quantum schedules
    /// carry an `O(1/√N)` residual; a target below that forces a classical
    /// (zero-error) backend under [`BackendHint::Auto`].
    pub error_target: f64,
    /// Independent repetitions of the search (all charged to the result).
    pub trials: u32,
    /// Seed for every random choice the job makes; two runs of the same job
    /// are bit-identical.
    pub seed: u64,
    /// Requested backend.
    pub backend: BackendHint,
    /// Per-query noise channels to run under ([`NoiseSpec`]). `None` — the
    /// wire default, so every pre-noise client line still parses — and an
    /// explicit all-zero spec both mean the ideal dynamics and share one
    /// identity everywhere (route key, result cache, planner).
    pub noise: Option<NoiseSpec>,
}

impl SearchJob {
    /// A minimal valid job with one trial, `Auto` backend and the paper's
    /// `O(1/√N)`-scale error budget.
    pub fn new(id: u64, n: u64, k: u64, target: u64) -> Self {
        Self {
            id,
            n,
            k,
            target,
            error_target: (50.0 / (n as f64).sqrt()).min(1.0),
            trials: 1,
            seed: id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            backend: BackendHint::Auto,
            noise: None,
        }
    }

    /// A full-address job: like [`SearchJob::new`], but asking the engine to
    /// resolve the *entire* address by recursive partial search (one block
    /// of `log2 K` bits per level) instead of just the top-level block.
    /// Equivalent to `SearchJob::new(..).with_backend(BackendHint::Recursive)`
    /// and to posting `"full_address": true` on the NDJSON serving protocol.
    pub fn full_address(id: u64, n: u64, k: u64, target: u64) -> Self {
        Self::new(id, n, k, target).with_backend(BackendHint::Recursive)
    }

    /// Sets the backend hint.
    pub fn with_backend(mut self, backend: BackendHint) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the error target.
    pub fn with_error_target(mut self, error_target: f64) -> Self {
        self.error_target = error_target;
        self
    }

    /// Sets the trial count.
    pub fn with_trials(mut self, trials: u32) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the noise channels this job runs under.
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The noise spec this job *effectively* runs under: `None`, a missing
    /// wire field and an explicit all-zero spec all normalise to `None`
    /// (ideal), so every consumer — route key, cache key, planner, executor
    /// — sees one identity for "no noise".
    pub fn effective_noise(&self) -> Option<NoiseSpec> {
        self.noise.filter(|spec| !spec.is_ideal())
    }

    /// A stable 64-bit hash of the job's deterministic spec — everything
    /// that decides what the job *computes* (`n`, `k`, `target`,
    /// `error_target`, `trials`, `seed`, backend hint) and nothing that
    /// doesn't (the client-assigned `id` is excluded). Two jobs with equal
    /// route keys execute identically, so a sharded front tier that routes
    /// by this key lands every repeat of a spec on the same worker and its
    /// warm result cache. The hash is FNV-1a over the packed fields —
    /// deliberately independent of `std`'s randomised `DefaultHasher`, so
    /// the key is stable across processes, runs, and rust versions (a
    /// router and its workers may be different builds).
    pub fn route_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let backend_tag: u64 = match self.backend {
            BackendHint::Auto => 0,
            BackendHint::Reduced => 1,
            BackendHint::StateVector => 2,
            BackendHint::Circuit => 3,
            BackendHint::ClassicalDeterministic => 4,
            BackendHint::ClassicalRandomized => 5,
            BackendHint::Recursive => 6,
            // Appended (not inserted) so every pre-sparse key — including
            // the pinned value below — is preserved.
            BackendHint::Sparse => 7,
        };
        fn mix(hash: &mut u64, word: u64) {
            for byte in word.to_le_bytes() {
                *hash ^= byte as u64;
                *hash = hash.wrapping_mul(PRIME);
            }
        }
        let mut hash = OFFSET;
        for word in [
            self.n,
            self.k,
            self.target,
            self.error_target.to_bits(),
            self.trials as u64,
            self.seed,
            backend_tag,
        ] {
            mix(&mut hash, word);
        }
        // Noise joins the hash only when it actually changes the dynamics:
        // `None`, a missing field and an all-zero spec all hash identically
        // to a pre-noise job, preserving the pinned key below (and landing
        // p = 0 grid points on the same worker as their ideal twins).
        if let Some(noise) = self.effective_noise() {
            for word in noise.key_words() {
                mix(&mut hash, word);
            }
        }
        hash
    }

    /// Checks the structural invariants every backend relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.k < 2 {
            return Err(format!(
                "job {}: k must be at least 2, got {}",
                self.id, self.k
            ));
        }
        if self.n < 2 * self.k {
            return Err(format!(
                "job {}: blocks must hold at least two items (n = {}, k = {})",
                self.id, self.n, self.k
            ));
        }
        if !self.n.is_multiple_of(self.k) {
            return Err(format!(
                "job {}: k must divide n (n = {}, k = {})",
                self.id, self.n, self.k
            ));
        }
        if self.target >= self.n {
            return Err(format!(
                "job {}: target {} outside the database [0, {})",
                self.id, self.target, self.n
            ));
        }
        if !(0.0..=1.0).contains(&self.error_target) {
            return Err(format!(
                "job {}: error_target must lie in [0, 1], got {}",
                self.id, self.error_target
            ));
        }
        if self.trials == 0 {
            return Err(format!("job {}: trials must be at least 1", self.id));
        }
        if let Some(noise) = self.noise {
            noise
                .validate()
                .map_err(|e| format!("job {}: {e}", self.id))?;
        }
        Ok(())
    }
}

/// One completed search.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The job's identifier.
    pub job_id: u64,
    /// Backend the planner resolved and the executor ran.
    pub backend: Backend,
    /// The block the engine reports (majority vote over trials; ties go to
    /// the lowest block index). On [`Backend::Recursive`] this is the block
    /// containing `address_found` — the top `log2 K` bits of the answer.
    pub block_found: u64,
    /// The block that actually contains the marked item.
    pub true_block: u64,
    /// Whether the job was answered correctly: `block_found == true_block`
    /// for block queries, *exact address equality* on
    /// [`Backend::Recursive`] (the stricter full-address criterion).
    pub correct: bool,
    /// The full address the recursion resolved (majority vote over trials);
    /// `None` on every block-resolution backend. This is what
    /// distinguishes a full-address result from a block result on the wire.
    pub address_found: Option<u64>,
    /// Partial-search levels run across all trials (`0` on non-recursive
    /// backends); per-level query detail is available through
    /// `psq_partial::recursive::LevelReport` when driving the runner
    /// directly.
    pub levels: u32,
    /// Oracle queries charged across all trials.
    pub queries: u64,
    /// Estimated probability that one trial reports the right block:
    /// exact final-state probability on quantum backends, empirical
    /// frequency on classical ones.
    pub success_estimate: f64,
    /// Trials executed.
    pub trials: u32,
    /// Trials whose reported block was correct.
    pub trials_correct: u32,
    /// Wall time this job spent executing, in microseconds. The only
    /// non-deterministic field; everything else is a pure function of the
    /// job spec.
    pub wall_time_us: f64,
}

impl SearchResult {
    /// The deterministic portion of the result (everything but wall time),
    /// as a tuple suitable for equality assertions in tests.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_fields(
        &self,
    ) -> (
        u64,
        Backend,
        u64,
        u64,
        bool,
        Option<u64>,
        u32,
        u64,
        f64,
        u32,
        u32,
    ) {
        (
            self.job_id,
            self.backend,
            self.block_found,
            self.true_block,
            self.correct,
            self.address_found,
            self.levels,
            self.queries,
            self.success_estimate,
            self.trials,
            self.trials_correct,
        )
    }
}

/// A job the engine refused to run, and why.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RejectedJob {
    /// The job's identifier.
    pub job_id: u64,
    /// Human-readable reason.
    pub reason: String,
}

/// Deterministically generates a mixed batch exercising every backend.
///
/// Jobs cycle through backend hints (including `Auto` at several error
/// targets and recursive full-address requests) with sizes appropriate to
/// each backend: huge databases for the reduced simulator, power-of-two
/// mid-size ones for the state-vector and circuit paths, small ones for the
/// classical scans.
pub fn generate_mixed_batch(count: usize, seed: u64) -> Vec<SearchJob> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(count);
    for id in 0..count as u64 {
        let job = match id % 10 {
            // Reduced: sizes far beyond any state vector.
            0 => {
                let exp = rng.gen_range(20u32..40);
                let k = 1u64 << rng.gen_range(1u32..7);
                let n = 1u64 << exp;
                SearchJob::new(id, n, k, rng.gen_range(0..n)).with_backend(BackendHint::Reduced)
            }
            // State vector: exact amplitudes at simulable sizes.
            1 => {
                let exp = rng.gen_range(8u32..13);
                let n = 1u64 << exp;
                let k = 1u64 << rng.gen_range(1u32..4);
                SearchJob::new(id, n, k, rng.gen_range(0..n)).with_backend(BackendHint::StateVector)
            }
            // Circuit: gate-by-gate, keep the register small.
            2 => {
                let exp = rng.gen_range(6u32..10);
                let n = 1u64 << exp;
                let k = 1u64 << rng.gen_range(1u32..3);
                SearchJob::new(id, n, k, rng.gen_range(0..n)).with_backend(BackendHint::Circuit)
            }
            // Classical scans at honest classical sizes (n a multiple of 8
            // so every k choice divides it).
            3 => {
                let n = rng.gen_range(32u64..1024) * 8;
                let k = [2u64, 4, 8][rng.gen_range(0..3usize)];
                SearchJob::new(id, n, k, rng.gen_range(0..n))
                    .with_backend(BackendHint::ClassicalDeterministic)
            }
            4 => {
                let n = rng.gen_range(32u64..1024) * 8;
                let k = [2u64, 4, 8][rng.gen_range(0..3usize)];
                SearchJob::new(id, n, k, rng.gen_range(0..n))
                    .with_backend(BackendHint::ClassicalRandomized)
            }
            // Auto with a routine error budget → planner picks the reduced
            // simulator.
            5 | 6 => {
                let exp = rng.gen_range(16u32..34);
                let n = 1u64 << exp;
                let k = 1u64 << rng.gen_range(1u32..6);
                SearchJob::new(id, n, k, rng.gen_range(0..n))
            }
            // Auto demanding zero error → planner must go classical.
            7 => {
                let n = rng.gen_range(32u64..512) * 4;
                let k = [2u64, 4][rng.gen_range(0..2usize)];
                SearchJob::new(id, n, k, rng.gen_range(0..n)).with_error_target(0.0)
            }
            // Full-address: recursive descent over power-of-two levels
            // (reduced rotation form at the top, exact state-vector kernels
            // below the planner's cutoff).
            8 => {
                let exp = rng.gen_range(12u32..22);
                let n = 1u64 << exp;
                let k = 1u64 << rng.gen_range(1u32..3);
                SearchJob::full_address(id, n, k, rng.gen_range(0..n))
            }
            // Huge-N exact on the sparse value-class backend, half of them
            // under depolarizing noise (collapses exercise the canonical
            // `K + 2`-class rebuild at sizes no dense backend can touch).
            // At √N-scale query counts even a tiny per-query rate scrambles
            // most trajectories — faithful physics, so batch-level
            // correctness floors must exempt the noisy jobs.
            _ => {
                let exp = rng.gen_range(24u32..34);
                let n = 1u64 << exp;
                let k = 1u64 << rng.gen_range(1u32..6);
                let job =
                    SearchJob::new(id, n, k, rng.gen_range(0..n)).with_backend(BackendHint::Sparse);
                if rng.gen_bool(0.5) {
                    job.with_noise(NoiseSpec {
                        depolarizing: 0.002,
                        ..NoiseSpec::ideal()
                    })
                } else {
                    job
                }
            }
        };
        jobs.push(job.with_trials(rng.gen_range(1u32..4)).with_seed(rng.gen()));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_json() {
        let job = SearchJob::new(7, 4096, 8, 1234)
            .with_backend(BackendHint::StateVector)
            .with_trials(3);
        let json = serde_json::to_string(&job).expect("serialise");
        let back: SearchJob = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(job, back);
    }

    #[test]
    fn result_round_trips_through_json() {
        let result = SearchResult {
            job_id: 9,
            backend: Backend::Circuit,
            block_found: 3,
            true_block: 3,
            correct: true,
            address_found: None,
            levels: 0,
            queries: 41,
            success_estimate: 0.9991,
            trials: 2,
            trials_correct: 2,
            wall_time_us: 12.5,
        };
        let json = serde_json::to_string(&result).expect("serialise");
        let back: SearchResult = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(result, back);
        // A full-address result round-trips its resolved address.
        let full = SearchResult {
            backend: Backend::Recursive,
            address_found: Some(777),
            levels: 5,
            ..result
        };
        let json = serde_json::to_string(&full).expect("serialise");
        let back: SearchResult = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(full, back);
    }

    #[test]
    fn validation_rejects_malformed_jobs() {
        assert!(SearchJob::new(0, 64, 1, 0).validate().is_err(), "k < 2");
        assert!(
            SearchJob::new(0, 6, 4, 0).validate().is_err(),
            "blocks too small"
        );
        assert!(
            SearchJob::new(0, 65, 4, 0).validate().is_err(),
            "k must divide n"
        );
        assert!(
            SearchJob::new(0, 64, 4, 64).validate().is_err(),
            "target outside"
        );
        assert!(
            SearchJob::new(0, 64, 4, 0)
                .with_trials(0)
                .validate()
                .is_err(),
            "zero trials"
        );
        assert!(
            SearchJob::new(0, 64, 4, 0)
                .with_error_target(1.5)
                .validate()
                .is_err(),
            "error target out of range"
        );
        assert!(SearchJob::new(0, 64, 4, 63).validate().is_ok());
    }

    #[test]
    fn mixed_batch_is_deterministic_and_valid() {
        let a = generate_mixed_batch(64, 42);
        let b = generate_mixed_batch(64, 42);
        assert_eq!(a, b);
        for job in &a {
            job.validate().expect("generated jobs are valid");
        }
        // The cycle guarantees every hint appears.
        for hint in [
            BackendHint::Reduced,
            BackendHint::StateVector,
            BackendHint::Circuit,
            BackendHint::ClassicalDeterministic,
            BackendHint::ClassicalRandomized,
            BackendHint::Recursive,
            BackendHint::Sparse,
            BackendHint::Auto,
        ] {
            assert!(a.iter().any(|j| j.backend == hint), "missing {hint:?}");
        }
        // The huge-N sparse arm covers both ideal and noisy jobs.
        let sparse: Vec<_> = a
            .iter()
            .filter(|j| j.backend == BackendHint::Sparse)
            .collect();
        assert!(sparse.iter().any(|j| j.effective_noise().is_some()));
        assert!(sparse.iter().any(|j| j.effective_noise().is_none()));
        assert!(sparse.iter().all(|j| j.n >= 1 << 24), "huge-N arm");
    }

    #[test]
    fn route_key_depends_on_spec_not_id() {
        let job = SearchJob::new(1, 1 << 12, 4, 99);
        let mut renamed = job;
        renamed.id = 777;
        assert_eq!(
            job.route_key(),
            renamed.route_key(),
            "the client-assigned id must not affect routing"
        );
        // Every deterministic field must affect the key.
        assert_ne!(job.route_key(), SearchJob { n: 1 << 13, ..job }.route_key());
        assert_ne!(job.route_key(), SearchJob { k: 8, ..job }.route_key());
        assert_ne!(job.route_key(), SearchJob { target: 98, ..job }.route_key());
        assert_ne!(job.route_key(), job.with_error_target(0.25).route_key());
        assert_ne!(job.route_key(), job.with_trials(2).route_key());
        assert_ne!(job.route_key(), job.with_seed(job.seed ^ 1).route_key());
        assert_ne!(
            job.route_key(),
            job.with_backend(BackendHint::Reduced).route_key()
        );
        // Pinned value: the key is part of the router's stability contract
        // (a router and its workers may be different builds), so a change
        // here is a breaking change, not a refactor.
        assert_eq!(
            SearchJob::new(0, 1 << 10, 4, 7).route_key(),
            0x56aa_10a9_19a8_e8e3
        );
    }

    #[test]
    fn noise_field_round_trips_and_normalises_to_one_identity() {
        let job = SearchJob::new(7, 4096, 8, 1234);
        // Wire compatibility: pre-noise lines (no "noise" key) parse to None.
        let legacy: SearchJob = serde_json::from_str(
            &serde_json::to_string(&job)
                .unwrap()
                .replace(",\"noise\":null", ""),
        )
        .expect("pre-noise line parses");
        assert_eq!(legacy, job);
        // A non-ideal spec round-trips.
        let noisy = job.with_noise(NoiseSpec {
            depolarizing: 0.01,
            dephasing: 0.0,
            oracle_fault: 0.05,
        });
        let back: SearchJob =
            serde_json::from_str(&serde_json::to_string(&noisy).unwrap()).unwrap();
        assert_eq!(back, noisy);
        // None, missing and all-zero collapse to the same effective noise...
        assert_eq!(job.effective_noise(), None);
        assert_eq!(job.with_noise(NoiseSpec::ideal()).effective_noise(), None);
        assert_eq!(noisy.effective_noise(), Some(noisy.noise.unwrap()));
        // ...so the route key is untouched by an ideal spec and moved by a
        // real one.
        assert_eq!(
            job.route_key(),
            job.with_noise(NoiseSpec::ideal()).route_key()
        );
        assert_ne!(job.route_key(), noisy.route_key());
        assert_ne!(
            noisy.route_key(),
            job.with_noise(NoiseSpec::oracle_only(0.05)).route_key()
        );
        // Out-of-range rates are rejected at validation.
        assert!(job
            .with_noise(NoiseSpec::oracle_only(1.5))
            .validate()
            .is_err());
        assert!(noisy.validate().is_ok());
    }

    #[test]
    fn full_address_constructor_sets_the_recursive_hint() {
        let job = SearchJob::full_address(3, 1 << 12, 4, 99);
        assert_eq!(job.backend, BackendHint::Recursive);
        assert_eq!(
            SearchJob::new(3, 1 << 12, 4, 99).with_backend(BackendHint::Recursive),
            job
        );
        job.validate().expect("full-address jobs validate normally");
    }
}
