//! Memoised search results: the serving layer's second cache.
//!
//! The planner's [`crate::planner::PlanCache`] memoises *schedules* — shared
//! by every job with the same `(N, K, ε)` shape. This module memoises whole
//! *results*: every backend runner is a pure function of the deterministic
//! job spec (that is the engine's reproducibility contract), so a repeated
//! job — within a batch or across batches — can skip execution entirely.
//!
//! The cache key is the full deterministic input of a run:
//! `(n, k, target-key, error_target, trials, seed, backend)`. For the
//! reduced backend the target key is the job's *block index* rather than the
//! exact address — the reduced dynamics and the block sampler only see the
//! block, so any two targets in the same block produce identical results and
//! share an entry (this is the `(n, k, target-block, seed, backend)` key of
//! the design note, widened with the fields the other backends genuinely
//! depend on: state-vector and circuit measurements walk the exact per-
//! address CDF, and the classical scans' probe counts depend on the exact
//! target position, so those backends key on the full address).
//!
//! Storage is sharded: `SHARD_COUNT` independent `parking_lot::RwLock`
//! maps, picked by key hash, so concurrent workers mostly touch different
//! locks and lookups take only a read lock. Hit/miss counters are surfaced
//! through [`crate::metrics::BatchMetrics`].

use crate::spec::{Backend, SearchJob, SearchResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards (power of two).
const SHARD_COUNT: usize = 16;

/// Default bound on stored results across all shards; see
/// [`ResultCache::with_capacity`].
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 1 << 16;

/// The deterministic inputs of one job execution (see module docs). Exposed
/// crate-internally so the executor can deduplicate repeats *within* one
/// batch before they reach the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    n: u64,
    k: u64,
    /// Exact target address, except on the reduced backend where it is the
    /// target's block index (coarser, safely — see module docs).
    target_key: u64,
    /// Bit pattern of the job's error target (`f64::to_bits`).
    error_bits: u64,
    trials: u32,
    seed: u64,
    backend: Backend,
}

impl CacheKey {
    pub(crate) fn new(job: &SearchJob, backend: Backend) -> Self {
        let target_key = match backend {
            // One entry serves every target in the block.
            Backend::Reduced => job.target / (job.n / job.k),
            _ => job.target,
        };
        Self {
            n: job.n,
            k: job.k,
            target_key,
            error_bits: job.error_target.to_bits(),
            trials: job.trials,
            seed: job.seed,
            backend,
        }
    }

    fn shard(&self) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % SHARD_COUNT
    }
}

/// Cumulative cache statistics, exposed through batch metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResultCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Results currently stored.
    pub entries: u64,
}

/// Sharded memoised `deterministic job spec → SearchResult` map (see module
/// docs). Safe to share across executor workers.
pub struct ResultCache {
    shards: Vec<RwLock<HashMap<CacheKey, SearchResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Per-shard entry bound (total capacity divided across shards).
    shard_capacity: usize,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RESULT_CACHE_CAPACITY)
    }
}

impl ResultCache {
    /// An empty cache bounded to roughly `capacity` stored results.
    ///
    /// The bound is enforced per shard by refusing inserts into a full
    /// shard: repeated jobs (the workload the cache serves) re-insert the
    /// same keys, so eviction machinery would cost more than it saves.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
        }
    }

    /// Looks up the result a previous execution produced for this job on
    /// `backend`. On a hit the stored result is re-stamped with the asking
    /// job's id and a zero wall time (the serving cost of a hit is the
    /// lookup itself); every deterministic field is returned exactly as the
    /// original execution produced it.
    pub fn lookup(&self, job: &SearchJob, backend: Backend) -> Option<SearchResult> {
        self.lookup_with_key(&CacheKey::new(job, backend), job.id)
    }

    /// Key-based form of [`ResultCache::lookup`] for callers (the executor)
    /// that already built the key for deduplication — avoids rebuilding and
    /// re-hashing it per call.
    pub(crate) fn lookup_with_key(&self, key: &CacheKey, job_id: u64) -> Option<SearchResult> {
        let found = self.shards[key.shard()].read().get(key).copied();
        match found {
            Some(mut result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                result.job_id = job_id;
                result.wall_time_us = 0.0;
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the result of executing `job` on `backend`. A full shard
    /// drops the insert; a racing duplicate insert is harmless because
    /// execution is deterministic.
    pub fn insert(&self, job: &SearchJob, backend: Backend, result: SearchResult) {
        self.insert_with_key(CacheKey::new(job, backend), result);
    }

    /// Key-based form of [`ResultCache::insert`] (see
    /// [`ResultCache::lookup_with_key`]).
    pub(crate) fn insert_with_key(&self, key: CacheKey, result: SearchResult) {
        let mut shard = self.shards[key.shard()].write();
        if shard.len() < self.shard_capacity || shard.contains_key(&key) {
            shard.insert(key, result);
        }
    }

    /// Credits `count` extra hits: used by the executor when it serves
    /// in-batch repeats by copying the original's result directly (the
    /// repeat was absorbed by memoisation even though no map lookup ran).
    pub fn record_hits(&self, count: u64) {
        self.hits.fetch_add(count, Ordering::Relaxed);
    }

    /// Current statistics.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BackendHint;

    fn result_for(job: &SearchJob, backend: Backend) -> SearchResult {
        SearchResult {
            job_id: job.id,
            backend,
            block_found: 2,
            true_block: 2,
            correct: true,
            queries: 123,
            success_estimate: 0.99,
            trials: job.trials,
            trials_correct: job.trials,
            wall_time_us: 41.5,
        }
    }

    #[test]
    fn lookup_returns_the_exact_cached_result_and_counts_hits() {
        let cache = ResultCache::default();
        let job = SearchJob::new(7, 1 << 10, 4, 100);
        assert!(cache.lookup(&job, Backend::Reduced).is_none());
        let stored = result_for(&job, Backend::Reduced);
        cache.insert(&job, Backend::Reduced, stored);

        // Same spec under a different job id: every deterministic field but
        // the echoed id must come back exactly as stored.
        let mut repeat = job;
        repeat.id = 99;
        let hit = cache.lookup(&repeat, Backend::Reduced).expect("cache hit");
        assert_eq!(hit.job_id, 99);
        assert_eq!(hit.wall_time_us, 0.0);
        let mut expected = stored;
        expected.job_id = 99;
        assert_eq!(hit.deterministic_fields(), expected.deterministic_fields());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 100);
        cache.insert(
            &job,
            Backend::StateVector,
            result_for(&job, Backend::StateVector),
        );
        // Different backend, seed, trials, error target or target address:
        // all misses.
        assert!(cache.lookup(&job, Backend::Circuit).is_none());
        assert!(cache
            .lookup(&job.with_seed(job.seed ^ 1), Backend::StateVector)
            .is_none());
        assert!(cache
            .lookup(&job.with_trials(2), Backend::StateVector)
            .is_none());
        assert!(cache
            .lookup(&job.with_error_target(0.5), Backend::StateVector)
            .is_none());
        let mut moved = job;
        moved.target = 101;
        assert!(cache.lookup(&moved, Backend::StateVector).is_none());
    }

    #[test]
    fn reduced_backend_shares_entries_within_a_block() {
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 0).with_backend(BackendHint::Reduced);
        cache.insert(&job, Backend::Reduced, result_for(&job, Backend::Reduced));
        // Same block (block size 256): hit. Different block: miss.
        let mut same_block = job;
        same_block.target = 255;
        assert!(cache.lookup(&same_block, Backend::Reduced).is_some());
        let mut other_block = job;
        other_block.target = 256;
        assert!(cache.lookup(&other_block, Backend::Reduced).is_none());
        // The exact-address backends never share across addresses.
        cache.insert(
            &job,
            Backend::ClassicalDeterministic,
            result_for(&job, Backend::ClassicalDeterministic),
        );
        let mut classical_moved = job;
        classical_moved.target = 255;
        assert!(cache
            .lookup(&classical_moved, Backend::ClassicalDeterministic)
            .is_none());
    }

    #[test]
    fn capacity_bound_refuses_new_keys_but_allows_updates() {
        let cache = ResultCache::with_capacity(SHARD_COUNT); // one entry per shard
        let mut inserted = Vec::new();
        for target in 0..64u64 {
            let job = SearchJob::new(target, 1 << 10, 4, target);
            cache.insert(
                &job,
                Backend::StateVector,
                result_for(&job, Backend::StateVector),
            );
            inserted.push(job);
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARD_COUNT as u64);
        assert!(stats.entries > 0);
        // Whatever made it in is still retrievable.
        let retrievable = inserted
            .iter()
            .filter(|job| cache.lookup(job, Backend::StateVector).is_some())
            .count() as u64;
        assert_eq!(retrievable, stats.entries);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = ResultCacheStats {
            hits: 5,
            misses: 2,
            entries: 2,
        };
        let json = serde_json::to_string(&stats).expect("serialise");
        let back: ResultCacheStats = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(stats, back);
    }
}
