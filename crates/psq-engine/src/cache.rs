//! Memoised search results: the serving layer's second cache.
//!
//! The planner's [`crate::planner::PlanCache`] memoises *schedules* — shared
//! by every job with the same `(N, K, ε)` shape. This module memoises whole
//! *results*: every backend runner is a pure function of the deterministic
//! job spec (that is the engine's reproducibility contract), so a repeated
//! job — within a batch or across batches — can skip execution entirely.
//!
//! The cache key is the full deterministic input of a run:
//! `(n, k, target-key, error_target, trials, seed, backend)`. For the
//! reduced backend the target key is the job's *block index* rather than the
//! exact address — the reduced dynamics and the block sampler only see the
//! block, so any two targets in the same block produce identical results and
//! share an entry (this is the `(n, k, target-block, seed, backend)` key of
//! the design note, widened with the fields the other backends genuinely
//! depend on: state-vector and circuit measurements walk the exact per-
//! address CDF, and the classical scans' probe counts depend on the exact
//! target position, so those backends key on the full address).
//!
//! Storage is sharded: `SHARD_COUNT` independent `parking_lot::RwLock`
//! maps, picked by key hash, so concurrent workers mostly touch different
//! locks and lookups take only a read lock. Hit/miss/eviction counters are
//! surfaced through [`crate::metrics::BatchMetrics`].
//!
//! Capacity is enforced per shard with a **second-chance clock**: every
//! resident key sits in a ring, a hit flags its entry as referenced (an
//! atomic store under the read lock), and an insert into a full shard sweeps
//! the clock hand — clearing referenced flags as it passes — until it finds
//! an unreferenced victim to replace. Long-lived serving processes therefore
//! keep a warm working set instead of freezing on whatever filled the shard
//! first (the pre-eviction behaviour was to refuse inserts when full).
//!
//! An optional **TTL** layers on top of the clock
//! ([`ResultCache::with_capacity_and_ttl`], surfaced as
//! `EngineConfig::result_cache_ttl` / `--result-cache-ttl-ms`): entries
//! remember their insertion instant, a lookup that finds an entry older
//! than the TTL reports a miss instead (counted in
//! [`ResultCacheStats::expired`]) and strips the entry's referenced flag so
//! the next clock sweep reclaims the slot. Expiry is lazy — a dead entry
//! occupies its slot until a fresh insert refreshes it or the clock evicts
//! it — which keeps the ring/map invariant trivial and adds no write-lock
//! traffic to the hit path.

use crate::spec::{Backend, SearchJob, SearchResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of independently locked shards (power of two).
const SHARD_COUNT: usize = 16;

/// Default bound on stored results across all shards; see
/// [`ResultCache::with_capacity`].
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 1 << 16;

/// The deterministic inputs of one job execution (see module docs). Exposed
/// crate-internally so the executor can deduplicate repeats *within* one
/// batch before they reach the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    n: u64,
    k: u64,
    /// Exact target address, except on the reduced backend where it is the
    /// target's block index (coarser, safely — see module docs).
    target_key: u64,
    /// Bit pattern of the job's error target (`f64::to_bits`).
    error_bits: u64,
    trials: u32,
    seed: u64,
    backend: Backend,
    /// Bit patterns of the job's effective noise rates, `None` for the ideal
    /// dynamics — so an explicit all-zero spec shares its entry with the
    /// noiseless twin, and any non-ideal spec keys separately.
    noise: Option<[u64; 3]>,
}

impl CacheKey {
    pub(crate) fn new(job: &SearchJob, backend: Backend) -> Self {
        let target_key = match backend {
            // One entry serves every target in the block.
            Backend::Reduced => job.target / (job.n / job.k),
            // The ideal sparse dynamics are block-symmetric too (the class
            // evolution and the block sampler only see the block), but noisy
            // sparse trajectories pin exact addresses on depolarizing
            // collapses, so they key on the full address like the dense
            // trajectories do.
            Backend::Sparse if job.effective_noise().is_none() => job.target / (job.n / job.k),
            _ => job.target,
        };
        Self {
            n: job.n,
            k: job.k,
            target_key,
            error_bits: job.error_target.to_bits(),
            trials: job.trials,
            seed: job.seed,
            backend,
            noise: job.effective_noise().map(|spec| spec.key_words()),
        }
    }

    fn shard(&self) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % SHARD_COUNT
    }
}

/// Cumulative cache statistics, exposed through batch metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResultCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Results currently stored.
    pub entries: u64,
    /// Resident results displaced by the second-chance clock to make room
    /// for new ones (zero until a shard fills).
    pub evictions: u64,
    /// Lookups that found an entry older than the configured TTL and
    /// treated it as a miss (always zero without a TTL).
    pub expired: u64,
}

/// One resident result plus its second-chance referenced flag (set on hit
/// under the shard's read lock, cleared by the sweeping clock hand).
struct Entry {
    result: SearchResult,
    referenced: AtomicBool,
    /// When the result was (re)inserted; lookups compare this against the
    /// cache's TTL.
    inserted_at: Instant,
}

/// One lock's worth of the cache: the map plus the clock ring that orders
/// its keys for eviction. `ring` always holds exactly `map`'s key set.
struct Shard {
    map: HashMap<CacheKey, Entry>,
    ring: Vec<CacheKey>,
    hand: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
        }
    }

    /// Second-chance victim selection: advance the hand, clearing referenced
    /// flags, until an unreferenced key comes up. Terminates within two
    /// sweeps (the first pass clears every flag in the worst case).
    fn evict_one(&mut self) -> CacheKey {
        loop {
            let candidate = self.ring[self.hand];
            let entry = self
                .map
                .get(&candidate)
                .expect("ring keys are always resident");
            if entry.referenced.swap(false, Ordering::Relaxed) {
                self.hand = (self.hand + 1) % self.ring.len();
            } else {
                self.map.remove(&candidate);
                return candidate;
            }
        }
    }
}

/// Sharded memoised `deterministic job spec → SearchResult` map (see module
/// docs). Safe to share across executor workers.
pub struct ResultCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    /// Per-shard entry bound (total capacity divided across shards).
    shard_capacity: usize,
    /// Entries older than this are served as misses (see module docs).
    ttl: Option<Duration>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RESULT_CACHE_CAPACITY)
    }
}

impl ResultCache {
    /// An empty cache bounded to roughly `capacity` stored results.
    ///
    /// The bound is enforced per shard: once a shard is full, each insert of
    /// a new key displaces one resident entry chosen by the second-chance
    /// clock (recently hit entries get a pass; see module docs), so a
    /// long-lived process keeps the warm part of its working set.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_ttl(capacity, None)
    }

    /// As [`ResultCache::with_capacity`], with results additionally expiring
    /// `ttl` after insertion (lazily — see module docs). `None` disables
    /// expiry.
    pub fn with_capacity_and_ttl(capacity: usize, ttl: Option<Duration>) -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
            ttl,
        }
    }

    /// Looks up the result a previous execution produced for this job on
    /// `backend`. On a hit the stored result is re-stamped with the asking
    /// job's id and a zero wall time (the serving cost of a hit is the
    /// lookup itself); every deterministic field is returned exactly as the
    /// original execution produced it.
    pub fn lookup(&self, job: &SearchJob, backend: Backend) -> Option<SearchResult> {
        self.lookup_with_key(&CacheKey::new(job, backend), job.id)
    }

    /// Key-based form of [`ResultCache::lookup`] for callers (the executor)
    /// that already built the key for deduplication — avoids rebuilding and
    /// re-hashing it per call.
    pub(crate) fn lookup_with_key(&self, key: &CacheKey, job_id: u64) -> Option<SearchResult> {
        let found = {
            let shard = self.shards[key.shard()].read();
            shard.map.get(key).map(|entry| {
                if self
                    .ttl
                    .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl)
                {
                    // Expired: report a miss and strip the referenced flag
                    // so the clock's next sweep reclaims the slot first.
                    entry.referenced.store(false, Ordering::Relaxed);
                    None
                } else {
                    // Second chance: a hit marks the entry so the next
                    // eviction sweep passes over it once.
                    entry.referenced.store(true, Ordering::Relaxed);
                    Some(entry.result)
                }
            })
        };
        match found {
            Some(Some(mut result)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                result.job_id = job_id;
                result.wall_time_us = 0.0;
                Some(result)
            }
            Some(None) => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the result of executing `job` on `backend`. Inserting a new
    /// key into a full shard evicts one resident entry (second-chance
    /// clock); a racing duplicate insert is harmless because execution is
    /// deterministic.
    pub fn insert(&self, job: &SearchJob, backend: Backend, result: SearchResult) {
        self.insert_with_key(CacheKey::new(job, backend), result);
    }

    /// Key-based form of [`ResultCache::insert`] (see
    /// [`ResultCache::lookup_with_key`]).
    pub(crate) fn insert_with_key(&self, key: CacheKey, result: SearchResult) {
        let mut shard = self.shards[key.shard()].write();
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.result = result;
            // A re-insert (including one that replaces an expired result)
            // starts a fresh TTL window.
            entry.inserted_at = Instant::now();
            return;
        }
        if shard.map.len() >= self.shard_capacity {
            let victim = shard.evict_one();
            let hand = shard.hand;
            shard.ring[hand] = key;
            shard.hand = (hand + 1) % shard.ring.len();
            self.evictions.fetch_add(1, Ordering::Relaxed);
            debug_assert!(!shard.map.contains_key(&victim));
        } else {
            shard.ring.push(key);
        }
        shard.map.insert(
            key,
            Entry {
                result,
                // New entries start unreferenced: an entry earns its pass
                // through a hit, not through mere insertion.
                referenced: AtomicBool::new(false),
                inserted_at: Instant::now(),
            },
        );
    }

    /// Credits `count` extra hits: used by the executor when it serves
    /// in-batch repeats by copying the original's result directly (the
    /// repeat was absorbed by memoisation even though no map lookup ran).
    pub fn record_hits(&self, count: u64) {
        self.hits.fetch_add(count, Ordering::Relaxed);
    }

    /// Current statistics.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().map.len() as u64).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BackendHint;

    fn result_for(job: &SearchJob, backend: Backend) -> SearchResult {
        SearchResult {
            job_id: job.id,
            backend,
            block_found: 2,
            true_block: 2,
            correct: true,
            address_found: None,
            levels: 0,
            queries: 123,
            success_estimate: 0.99,
            trials: job.trials,
            trials_correct: job.trials,
            wall_time_us: 41.5,
        }
    }

    #[test]
    fn lookup_returns_the_exact_cached_result_and_counts_hits() {
        let cache = ResultCache::default();
        let job = SearchJob::new(7, 1 << 10, 4, 100);
        assert!(cache.lookup(&job, Backend::Reduced).is_none());
        let stored = result_for(&job, Backend::Reduced);
        cache.insert(&job, Backend::Reduced, stored);

        // Same spec under a different job id: every deterministic field but
        // the echoed id must come back exactly as stored.
        let mut repeat = job;
        repeat.id = 99;
        let hit = cache.lookup(&repeat, Backend::Reduced).expect("cache hit");
        assert_eq!(hit.job_id, 99);
        assert_eq!(hit.wall_time_us, 0.0);
        let mut expected = stored;
        expected.job_id = 99;
        assert_eq!(hit.deterministic_fields(), expected.deterministic_fields());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 100);
        cache.insert(
            &job,
            Backend::StateVector,
            result_for(&job, Backend::StateVector),
        );
        // Different backend, seed, trials, error target or target address:
        // all misses.
        assert!(cache.lookup(&job, Backend::Circuit).is_none());
        assert!(cache
            .lookup(&job.with_seed(job.seed ^ 1), Backend::StateVector)
            .is_none());
        assert!(cache
            .lookup(&job.with_trials(2), Backend::StateVector)
            .is_none());
        assert!(cache
            .lookup(&job.with_error_target(0.5), Backend::StateVector)
            .is_none());
        let mut moved = job;
        moved.target = 101;
        assert!(cache.lookup(&moved, Backend::StateVector).is_none());
    }

    #[test]
    fn noise_joins_the_key_only_when_non_ideal() {
        use crate::spec::NoiseSpec;
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 100);
        cache.insert(
            &job,
            Backend::StateVector,
            result_for(&job, Backend::StateVector),
        );
        // An explicit all-zero spec is the same dynamics: shares the entry.
        assert!(cache
            .lookup(&job.with_noise(NoiseSpec::ideal()), Backend::StateVector)
            .is_some());
        // Any non-zero rate keys separately, and distinct rates do not
        // collide with each other.
        let faulty = job.with_noise(NoiseSpec::oracle_only(0.05));
        assert!(cache.lookup(&faulty, Backend::StateVector).is_none());
        cache.insert(
            &faulty,
            Backend::StateVector,
            result_for(&faulty, Backend::StateVector),
        );
        assert!(cache.lookup(&faulty, Backend::StateVector).is_some());
        assert!(cache
            .lookup(
                &job.with_noise(NoiseSpec::oracle_only(0.1)),
                Backend::StateVector
            )
            .is_none());
        assert!(cache.lookup(&job, Backend::StateVector).is_some());
    }

    #[test]
    fn reduced_backend_shares_entries_within_a_block() {
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 0).with_backend(BackendHint::Reduced);
        cache.insert(&job, Backend::Reduced, result_for(&job, Backend::Reduced));
        // Same block (block size 256): hit. Different block: miss.
        let mut same_block = job;
        same_block.target = 255;
        assert!(cache.lookup(&same_block, Backend::Reduced).is_some());
        let mut other_block = job;
        other_block.target = 256;
        assert!(cache.lookup(&other_block, Backend::Reduced).is_none());
        // The exact-address backends never share across addresses.
        cache.insert(
            &job,
            Backend::ClassicalDeterministic,
            result_for(&job, Backend::ClassicalDeterministic),
        );
        let mut classical_moved = job;
        classical_moved.target = 255;
        assert!(cache
            .lookup(&classical_moved, Backend::ClassicalDeterministic)
            .is_none());
    }

    #[test]
    fn sparse_entries_are_distinct_from_dense_and_block_keyed_when_ideal() {
        use crate::spec::NoiseSpec;
        let cache = ResultCache::default();
        let job = SearchJob::new(0, 1 << 10, 4, 0).with_backend(BackendHint::Sparse);
        cache.insert(&job, Backend::Sparse, result_for(&job, Backend::Sparse));
        // The backend field keeps sparse results apart from every dense
        // backend's, even though ideal sparse and reduced runs agree on all
        // deterministic fields.
        assert!(cache.lookup(&job, Backend::Reduced).is_none());
        assert!(cache.lookup(&job, Backend::StateVector).is_none());
        // Ideal sparse shares entries within a block, like reduced...
        let mut same_block = job;
        same_block.target = 255;
        assert!(cache.lookup(&same_block, Backend::Sparse).is_some());
        let mut other_block = job;
        other_block.target = 256;
        assert!(cache.lookup(&other_block, Backend::Sparse).is_none());
        // ...but noisy sparse trajectories key on the exact address.
        let noisy = job.with_noise(NoiseSpec::oracle_only(0.05));
        cache.insert(&noisy, Backend::Sparse, result_for(&noisy, Backend::Sparse));
        let mut noisy_moved = noisy;
        noisy_moved.target = 255;
        assert!(cache.lookup(&noisy_moved, Backend::Sparse).is_none());
        assert!(cache.lookup(&noisy, Backend::Sparse).is_some());
    }

    #[test]
    fn full_shards_evict_instead_of_refusing() {
        let cache = ResultCache::with_capacity(SHARD_COUNT); // one entry per shard
        let mut inserted = Vec::new();
        for target in 0..64u64 {
            let job = SearchJob::new(target, 1 << 10, 4, target);
            cache.insert(
                &job,
                Backend::StateVector,
                result_for(&job, Backend::StateVector),
            );
            inserted.push(job);
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARD_COUNT as u64);
        assert!(stats.entries > 0);
        assert_eq!(
            stats.evictions,
            64 - stats.entries,
            "every insert beyond capacity displaced a resident entry"
        );
        // Exactly `entries` of the inserted keys remain retrievable, and the
        // cache keeps serving new keys after churn (no freeze-on-full).
        let retrievable = inserted
            .iter()
            .filter(|job| cache.lookup(job, Backend::StateVector).is_some())
            .count() as u64;
        assert_eq!(retrievable, stats.entries);
        let fresh = SearchJob::new(999, 1 << 10, 4, 77);
        cache.insert(
            &fresh,
            Backend::StateVector,
            result_for(&fresh, Backend::StateVector),
        );
        assert!(cache.lookup(&fresh, Backend::StateVector).is_some());
    }

    #[test]
    fn second_chance_spares_recently_hit_entries() {
        // One shard, capacity 2 per shard: keys in the same shard compete.
        let cache = ResultCache::with_capacity(2 * SHARD_COUNT);
        // Find three jobs whose keys land in the same shard.
        let mut same_shard: Vec<SearchJob> = Vec::new();
        let want_shard =
            CacheKey::new(&SearchJob::new(0, 1 << 10, 4, 0), Backend::StateVector).shard();
        for target in 0..1024u64 {
            let job = SearchJob::new(target, 1 << 10, 4, target);
            if CacheKey::new(&job, Backend::StateVector).shard() == want_shard {
                same_shard.push(job);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(same_shard.len(), 3, "hash spreads over shards");
        let (hot, cold, newcomer) = (same_shard[0], same_shard[1], same_shard[2]);
        cache.insert(
            &hot,
            Backend::StateVector,
            result_for(&hot, Backend::StateVector),
        );
        cache.insert(
            &cold,
            Backend::StateVector,
            result_for(&cold, Backend::StateVector),
        );
        // Reference `hot` so the clock passes over it; `cold` stays
        // unreferenced and must be the victim.
        assert!(cache.lookup(&hot, Backend::StateVector).is_some());
        cache.insert(
            &newcomer,
            Backend::StateVector,
            result_for(&newcomer, Backend::StateVector),
        );
        assert!(
            cache.lookup(&hot, Backend::StateVector).is_some(),
            "recently hit entry survives the sweep"
        );
        assert!(
            cache.lookup(&cold, Backend::StateVector).is_none(),
            "unreferenced entry is the second-chance victim"
        );
        assert!(cache.lookup(&newcomer, Backend::StateVector).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_churn_preserves_ring_map_invariant() {
        // Hammer a tiny cache with updates and fresh keys; entries must
        // never exceed capacity and every surviving key must be readable.
        let cache = ResultCache::with_capacity(SHARD_COUNT * 2);
        for round in 0..8u64 {
            for target in 0..96u64 {
                let job = SearchJob::new(target, 1 << 10, 4, (round * 96 + target) % (1 << 10));
                cache.insert(
                    &job,
                    Backend::StateVector,
                    result_for(&job, Backend::StateVector),
                );
                // Touch half the keys to exercise the referenced bit.
                if target % 2 == 0 {
                    let _ = cache.lookup(&job, Backend::StateVector);
                }
            }
        }
        let stats = cache.stats();
        assert!(stats.entries <= (SHARD_COUNT * 2) as u64);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn ttl_expires_entries_lazily_and_counts_them() {
        let cache = ResultCache::with_capacity_and_ttl(64, Some(Duration::from_millis(20)));
        let job = SearchJob::new(1, 1 << 10, 4, 9);
        cache.insert(&job, Backend::Reduced, result_for(&job, Backend::Reduced));
        assert!(
            cache.lookup(&job, Backend::Reduced).is_some(),
            "fresh entry hits"
        );
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            cache.lookup(&job, Backend::Reduced).is_none(),
            "expired entry is served as a miss"
        );
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Expiry is lazy: the slot is still resident until refreshed or
        // evicted by the clock.
        assert_eq!(stats.entries, 1);
        // A re-insert refreshes the TTL window and serves hits again.
        cache.insert(&job, Backend::Reduced, result_for(&job, Backend::Reduced));
        assert!(cache.lookup(&job, Backend::Reduced).is_some());
        assert_eq!(cache.stats().expired, 1, "no further expiries");
    }

    #[test]
    fn without_a_ttl_nothing_ever_expires() {
        let cache = ResultCache::with_capacity(64);
        let job = SearchJob::new(1, 1 << 10, 4, 9);
        cache.insert(&job, Backend::Reduced, result_for(&job, Backend::Reduced));
        std::thread::sleep(Duration::from_millis(5));
        assert!(cache.lookup(&job, Backend::Reduced).is_some());
        assert_eq!(cache.stats().expired, 0);
    }

    #[test]
    fn expired_entries_lose_their_second_chance_pass() {
        // An expired entry must be reclaimable by the clock even though it
        // was hit (and hence referenced) before expiring.
        let cache = ResultCache::with_capacity_and_ttl(
            SHARD_COUNT, // one entry per shard
            Some(Duration::from_millis(10)),
        );
        let job = SearchJob::new(1, 1 << 10, 4, 9);
        cache.insert(
            &job,
            Backend::StateVector,
            result_for(&job, Backend::StateVector),
        );
        assert!(
            cache.lookup(&job, Backend::StateVector).is_some(),
            "referenced"
        );
        std::thread::sleep(Duration::from_millis(25));
        assert!(
            cache.lookup(&job, Backend::StateVector).is_none(),
            "expired"
        );
        // Insert a second key into the same shard: the expired entry is the
        // clock victim because its referenced flag was stripped.
        let shard = CacheKey::new(&job, Backend::StateVector).shard();
        let other = (0..1024u64)
            .map(|target| SearchJob::new(target, 1 << 10, 4, target))
            .find(|candidate| {
                let key = CacheKey::new(candidate, Backend::StateVector);
                key.shard() == shard && key != CacheKey::new(&job, Backend::StateVector)
            })
            .expect("another key lands in the shard");
        cache.insert(
            &other,
            Backend::StateVector,
            result_for(&other, Backend::StateVector),
        );
        assert!(cache.lookup(&other, Backend::StateVector).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let stats = ResultCacheStats {
            hits: 5,
            misses: 2,
            entries: 2,
            evictions: 3,
            expired: 1,
        };
        let json = serde_json::to_string(&stats).expect("serialise");
        let back: ResultCacheStats = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(stats, back);
    }
}
