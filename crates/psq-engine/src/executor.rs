//! Batch execution over the worker pool.
//!
//! The [`Engine`] owns a persistent `psq_parallel::WorkerPool` (work-
//! stealing: per-worker deques fed from a shared injector), a shared
//! [`Planner`] (with its memoised plan cache), and a sharded
//! [`ResultCache`]. [`Engine::run_batch`] validates and plans every job,
//! serves repeats straight from the result cache, fans the rest out over
//! the pool, and aggregates results into [`BatchMetrics`]. Ordering and
//! determinism:
//!
//! * results come back in job-submission order regardless of which worker
//!   ran what (`WorkerPool::map` reassembles by submission index);
//! * each job's randomness comes from its own seed, so a batch's results —
//!   wall times aside — are bit-identical run to run, across thread counts,
//!   and identical to executing each job alone;
//! * a cache hit returns exactly the deterministic fields a cold execution
//!   would produce (the cache key covers every input the runners read), so
//!   caching is observable only through wall times and the hit counters.

use crate::backends;
use crate::cache::{CacheKey, ResultCache, ResultCacheStats, DEFAULT_RESULT_CACHE_CAPACITY};
use crate::metrics::{BatchMetrics, EngineObs, EngineObsSnapshot};
use crate::planner::{ExecutionPlan, Planner};
use crate::spec::{RejectedJob, SearchJob, SearchResult};
use psq_obs::{clock, trace, LocalHistogram, Span};
use psq_parallel::WorkerPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine construction options.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads; `None` sizes the pool to the machine.
    pub threads: Option<usize>,
    /// Whether repeated jobs are served from the result cache (on by
    /// default; disable for honest cold-path benchmarking).
    pub result_cache: bool,
    /// Approximate bound on stored results when the cache is enabled.
    pub result_cache_capacity: usize,
    /// Optional time-to-live for cached results: entries older than this
    /// are served as misses and re-executed (lazy expiry on top of the
    /// second-chance clock; expiries are counted in `ResultCacheStats`).
    /// `None` (the default) keeps results until evicted.
    pub result_cache_ttl: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: None,
            result_cache: true,
            result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
            result_cache_ttl: None,
        }
    }
}

/// A fully executed batch: per-job results, rejects, and aggregate metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Results in job-submission order.
    pub results: Vec<SearchResult>,
    /// Jobs that failed validation or planning, with reasons.
    pub rejected: Vec<RejectedJob>,
    /// Aggregate statistics.
    pub metrics: BatchMetrics,
}

/// The batched, multi-backend partial-search execution engine.
pub struct Engine {
    planner: Arc<Planner>,
    pool: WorkerPool,
    /// `None` when disabled through [`EngineConfig::result_cache`].
    result_cache: Option<Arc<ResultCache>>,
    /// Always-on per-stage latency histograms (plan, cache lookup, execute
    /// per backend), shared with the pool workers.
    obs: Arc<EngineObs>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl Engine {
    /// Builds an engine with its own planner, worker pool and result cache.
    pub fn new(config: EngineConfig) -> Self {
        let pool = match config.threads {
            Some(threads) => WorkerPool::new(threads),
            None => WorkerPool::with_default_threads(),
        };
        Self {
            planner: Arc::new(Planner::new()),
            pool,
            result_cache: config.result_cache.then(|| {
                Arc::new(ResultCache::with_capacity_and_ttl(
                    config.result_cache_capacity,
                    config.result_cache_ttl,
                ))
            }),
            obs: Arc::new(EngineObs::new()),
        }
    }

    /// The shared planner (schedule cache statistics live here).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Worker threads serving this engine.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Result-cache statistics (all zeros when the cache is disabled).
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.result_cache
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default()
    }

    /// The engine's observability registry (per-stage latency histograms,
    /// cumulative over the engine's lifetime).
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// A serialisable snapshot of the per-stage latency histograms.
    pub fn obs_snapshot(&self) -> EngineObsSnapshot {
        self.obs.snapshot()
    }

    /// Executes one job synchronously on the calling thread (the single-job
    /// serving path), going through the result cache like the batch path.
    pub fn run_job(&self, job: &SearchJob) -> Result<SearchResult, String> {
        let plan_span = Span::enter_always(trace::stage::PLAN);
        let planned = self.planner.plan(job);
        self.obs
            .plan
            .record(plan_span.finish(job.id).expect("always timed"));
        let plan = planned?;
        let key = self
            .result_cache
            .as_ref()
            .map(|_| CacheKey::new(job, plan.backend));
        if let (Some(cache), Some(key)) = (&self.result_cache, &key) {
            let cache_span = Span::enter_always(trace::stage::CACHE);
            let hit = cache.lookup_with_key(key, job.id);
            self.obs
                .cache_lookup
                .record(cache_span.finish(job.id).expect("always timed"));
            if let Some(hit) = hit {
                return Ok(hit);
            }
        }
        let result = execute_planned(job, &plan, &self.obs);
        if let (Some(cache), Some(key)) = (&self.result_cache, key) {
            cache.insert_with_key(key, result);
        }
        Ok(result)
    }

    /// Executes a batch: plans every job, serves repeats from the result
    /// cache, fans the rest out over the pool, and aggregates metrics.
    pub fn run_batch(&self, jobs: &[SearchJob]) -> BatchReport {
        let started = Instant::now();
        // Plan on the submitting thread: planning is cheap (cache-memoised),
        // failing fast keeps rejects out of the pool, and handing the
        // resolved plan to the worker keeps the plan-cache lock off the
        // execution hot path. Cache lookups also happen here — a hit costs
        // a sharded read lock, far less than a pool round trip.
        let mut rejected = Vec::new();
        let mut results: Vec<Option<SearchResult>> = Vec::with_capacity(jobs.len());
        // Each pending entry carries the cache key built during planning
        // (`None` when the cache is disabled) so insert-after-execution does
        // not rebuild and re-hash it.
        let mut pending: Vec<(usize, SearchJob, ExecutionPlan, Option<CacheKey>)> = Vec::new();
        // Repeats of a job already pending in *this* batch (same cache key):
        // executed once, then copied to every repeat's slot.
        let mut duplicates: Vec<(usize, usize, u64)> = Vec::new();
        let mut pending_keys: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        // This loop serves a result-cache hit in a few hundred ns, so its
        // timing chains coarse clock stamps (the plan end stamp starts the
        // cache lookup) and records into unsynchronised scratch histograms
        // flushed once after the loop — per-stage trace events still go out
        // per job when tracing is on. Each event resolves the job's bound
        // distributed trace id (`psq_obs::trace::bind_trace`, set by the
        // serving layer on admission), so batch stage spans stitch into the
        // cross-process chain without threading an id through this loop.
        let mut plan_scratch = LocalHistogram::new();
        let mut cache_scratch = LocalHistogram::new();
        // `cursor` is the last stamp taken; each stage is measured from it,
        // so per-job slot bookkeeping is charged to the next job's plan —
        // tens of ns, invisible at log2-bucket resolution.
        let mut cursor = clock::now();
        for job in jobs {
            let planned = self.planner.plan(job);
            let plan_done = clock::now();
            let plan_us = clock::us_between(cursor, plan_done);
            cursor = plan_done;
            plan_scratch.record(plan_us);
            trace::event(job.id, trace::stage::PLAN, plan_us);
            match planned {
                Ok(plan) => {
                    let slot = results.len();
                    results.push(None);
                    match &self.result_cache {
                        Some(cache) => {
                            // Repeat-of-pending is checked before the map
                            // lookup so a repeat counts as exactly one hit
                            // (credited when served) and never as a miss —
                            // `misses` keeps meaning "lookups that fell
                            // through to execution".
                            let key = CacheKey::new(job, plan.backend);
                            if let Some(&origin) = pending_keys.get(&key) {
                                duplicates.push((slot, origin, job.id));
                            } else {
                                let hit = cache.lookup_with_key(&key, job.id);
                                // Charges key construction and the repeat
                                // check to the lookup — both are part of
                                // serving from cache.
                                let lookup_done = clock::now();
                                let cache_us = clock::us_between(cursor, lookup_done);
                                cursor = lookup_done;
                                cache_scratch.record(cache_us);
                                trace::event(job.id, trace::stage::CACHE, cache_us);
                                if let Some(hit) = hit {
                                    results[slot] = Some(hit);
                                } else {
                                    pending_keys.insert(key, slot);
                                    pending.push((slot, *job, plan, Some(key)));
                                }
                            }
                        }
                        None => pending.push((slot, *job, plan, None)),
                    }
                }
                Err(reason) => rejected.push(RejectedJob {
                    job_id: job.id,
                    reason,
                }),
            }
        }
        plan_scratch.flush_into(&self.obs.plan);
        cache_scratch.flush_into(&self.obs.cache_lookup);
        let slots_and_keys: Vec<(usize, Option<CacheKey>)> = pending
            .iter()
            .map(|(slot, _, _, key)| (*slot, *key))
            .collect();
        let tasks: Vec<_> = pending
            .into_iter()
            .map(|(_, job, plan, _)| {
                let obs = Arc::clone(&self.obs);
                move || execute_planned(&job, &plan, &obs)
            })
            .collect();
        // `map` returns in submission order, which is exactly `slots` order.
        for ((slot, key), result) in slots_and_keys.into_iter().zip(self.pool.map(tasks)) {
            if let (Some(cache), Some(key)) = (&self.result_cache, key) {
                cache.insert_with_key(key, result);
            }
            results[slot] = Some(result);
        }
        // In-batch repeats are copies of their original's result — served
        // like cache hits (id re-stamped, wall time charged to the lookup),
        // and counted as hits since the repeat was absorbed by memoisation.
        if !duplicates.is_empty() {
            if let Some(cache) = &self.result_cache {
                cache.record_hits(duplicates.len() as u64);
            }
            for (slot, origin_slot, job_id) in duplicates {
                let mut served = results[origin_slot].expect("original executed in the loop above");
                served.job_id = job_id;
                served.wall_time_us = 0.0;
                results[slot] = Some(served);
            }
        }
        let wall_time_s = started.elapsed().as_secs_f64();
        let results: Vec<SearchResult> = results
            .into_iter()
            .map(|r| r.expect("every accepted job has a result"))
            .collect();
        let metrics = BatchMetrics::aggregate(
            &results,
            rejected.len() as u64,
            wall_time_s,
            self.planner.cache().stats(),
            self.result_cache_stats(),
        );
        BatchReport {
            results,
            rejected,
            metrics,
        }
    }
}

/// A cloneable, thread-shareable handle to an [`Engine`].
///
/// The engine itself is `Sync` (planner, pool and result cache are all
/// internally synchronised), so serving layers that fan work in from many
/// threads — the `psq-serve` readers and its coalescer — share one engine
/// by cloning this handle instead of threading `Arc<Engine>` everywhere.
/// Dereferences to [`Engine`]; dropping the last clone shuts the pool down.
#[derive(Clone)]
pub struct EngineHandle {
    engine: Arc<Engine>,
}

impl EngineHandle {
    /// Builds a fresh engine behind a shareable handle.
    pub fn new(config: EngineConfig) -> Self {
        Engine::new(config).into_handle()
    }
}

impl Default for EngineHandle {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl std::ops::Deref for EngineHandle {
    type Target = Engine;

    fn deref(&self) -> &Engine {
        &self.engine
    }
}

impl Engine {
    /// Wraps this engine in a cloneable [`EngineHandle`].
    pub fn into_handle(self) -> EngineHandle {
        EngineHandle {
            engine: Arc::new(self),
        }
    }
}

/// Executes an already-planned job, stamping its wall time. The execution
/// span subsumes the wall-time `Instant` the stamp always needed, feeds the
/// per-backend latency histogram, and emits an `execute:<backend>` trace
/// event when tracing is on.
fn execute_planned(job: &SearchJob, plan: &ExecutionPlan, obs: &EngineObs) -> SearchResult {
    // Noisy state-vector runs carry their own stage label so the trace
    // stream separates trajectory executions from ideal ones; their latency
    // still lands in the state-vector histogram (same substrate, and the
    // snapshot shape stays one histogram per backend).
    let label = match job.effective_noise() {
        Some(_) => trace::stage::EXECUTE_NOISY,
        None => plan.backend.stage_label(),
    };
    let span = Span::enter_always(label);
    let mut result = backends::execute(job, plan);
    let us = span.finish(job.id).expect("always timed");
    result.wall_time_us = us;
    obs.record_execute(plan.backend, us);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate_mixed_batch, BackendHint};

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let engine = Engine::new(EngineConfig {
            threads: Some(4),
            ..EngineConfig::default()
        });
        let jobs: Vec<SearchJob> = (0..40)
            .map(|id| SearchJob::new(id, 1 << 10, 4, (id * 37) % (1 << 10)))
            .collect();
        let report = engine.run_batch(&jobs);
        assert_eq!(report.results.len(), 40);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
        }
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn batch_matches_single_job_execution_bit_for_bit() {
        let engine = Engine::new(EngineConfig {
            threads: Some(8),
            ..EngineConfig::default()
        });
        let jobs = generate_mixed_batch(24, 7);
        let report = engine.run_batch(&jobs);
        let solo = Engine::new(EngineConfig {
            threads: Some(1),
            ..EngineConfig::default()
        });
        for (job, batched) in jobs.iter().zip(&report.results) {
            let alone = solo.run_job(job).expect("runs alone");
            assert_eq!(
                batched.deterministic_fields(),
                alone.deterministic_fields(),
                "job {} diverged between batch and solo execution",
                job.id
            );
        }
    }

    #[test]
    fn invalid_jobs_are_rejected_not_fatal() {
        let engine = Engine::default();
        let mut jobs = vec![SearchJob::new(0, 1 << 10, 4, 5)];
        jobs.push(SearchJob::new(1, 10, 7, 5)); // k does not divide n
        jobs.push(SearchJob::new(2, 1 << 10, 4, 1 << 11)); // target outside
        jobs.push(SearchJob::new(3, 96, 4, 5).with_backend(BackendHint::Circuit)); // not pow2
        let report = engine.run_batch(&jobs);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.rejected.len(), 3);
        assert_eq!(report.metrics.jobs, 1);
        assert_eq!(report.metrics.rejected, 3);
        assert_eq!(
            report.rejected.iter().map(|r| r.job_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn metrics_reflect_the_batch() {
        let engine = Engine::default();
        let jobs = generate_mixed_batch(32, 3);
        let report = engine.run_batch(&jobs);
        let m = &report.metrics;
        assert_eq!(m.jobs, 32);
        assert_eq!(m.backend_jobs.total(), 32);
        assert!(
            m.backend_jobs.backends_used() >= 4,
            "mixed batch spans backends"
        );
        assert!(m.throughput_jobs_per_s > 0.0);
        assert!(m.total_queries > 0);
        assert!(m.latency_us_max >= m.latency_us_p50);
        // Noisy trajectories at √N-scale query counts legitimately miss
        // (one depolarizing collapse scrambles the rotation), so the
        // near-perfect correctness floor applies to the ideal jobs only.
        let noisy = jobs
            .iter()
            .filter(|j| j.effective_noise().is_some())
            .count() as u64;
        assert!(noisy > 0, "mixed batch includes noisy sparse jobs");
        assert!(
            m.jobs_correct + noisy + 2 >= 32,
            "ideal partial search should almost never miss \
             ({} correct, {noisy} noisy)",
            m.jobs_correct
        );
        // Mixed batches repeat (n, k, ε) shapes: the cache must be hitting.
        assert!(m.plan_cache.hits > 0);
        assert_eq!(m.plan_cache.entries, m.plan_cache.misses);
    }

    #[test]
    fn repeated_batches_are_served_from_the_result_cache() {
        let engine = Engine::new(EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        });
        let jobs = generate_mixed_batch(24, 5);
        let cold = engine.run_batch(&jobs);
        let cold_hits = cold.metrics.result_cache.hits;
        let warm = engine.run_batch(&jobs);
        assert!(
            warm.metrics.result_cache.hits >= cold_hits + 24,
            "every repeated job must hit ({} -> {})",
            cold_hits,
            warm.metrics.result_cache.hits
        );
        assert!(warm.metrics.result_cache.entries > 0);
        for (a, b) in cold.results.iter().zip(&warm.results) {
            assert_eq!(
                a.deterministic_fields(),
                b.deterministic_fields(),
                "cached result diverged from cold execution"
            );
        }
        // A cache-disabled engine produces the identical deterministic
        // results and reports an all-zero cache.
        let uncached = Engine::new(EngineConfig {
            threads: Some(2),
            result_cache: false,
            ..EngineConfig::default()
        });
        let reference = uncached.run_batch(&jobs);
        assert_eq!(reference.metrics.result_cache, ResultCacheStats::default());
        for (a, b) in reference.results.iter().zip(&warm.results) {
            assert_eq!(a.deterministic_fields(), b.deterministic_fields());
        }
    }

    #[test]
    fn duplicate_jobs_within_one_batch_execute_once() {
        let engine = Engine::new(EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        });
        let template = SearchJob::new(0, 1 << 12, 8, 33).with_seed(7);
        let jobs: Vec<SearchJob> = (0..10)
            .map(|id| {
                let mut job = template;
                job.id = id;
                job
            })
            .collect();
        let report = engine.run_batch(&jobs);
        assert_eq!(report.results.len(), 10);
        // Nine of the ten are in-batch repeats served from the cache.
        assert_eq!(report.metrics.result_cache.hits, 9);
        let base = report.results[0];
        for (id, result) in report.results.iter().enumerate() {
            assert_eq!(result.job_id, id as u64, "ids echo per submission");
            // Everything but the echoed id matches the executed original.
            assert_eq!(result.backend, base.backend);
            assert_eq!(result.block_found, base.block_found);
            assert_eq!(result.true_block, base.true_block);
            assert_eq!(result.queries, base.queries);
            assert_eq!(result.success_estimate, base.success_estimate);
            assert_eq!(result.trials_correct, base.trials_correct);
        }
    }

    #[test]
    fn result_cache_ttl_re_executes_stale_results() {
        let engine = Engine::new(EngineConfig {
            threads: Some(1),
            result_cache_ttl: Some(Duration::from_millis(20)),
            ..EngineConfig::default()
        });
        let job = SearchJob::new(0, 1 << 12, 8, 100);
        let first = engine.run_job(&job).expect("runs");
        let warm = engine.run_job(&job).expect("hits while fresh");
        assert_eq!(engine.result_cache_stats().hits, 1);
        std::thread::sleep(Duration::from_millis(40));
        let stale = engine.run_job(&job).expect("re-executes after expiry");
        let stats = engine.result_cache_stats();
        assert_eq!(stats.expired, 1, "the stale lookup was counted");
        assert_eq!(stats.hits, 1, "expired lookups are not hits");
        // Determinism makes the re-execution indistinguishable in content.
        assert_eq!(first.deterministic_fields(), warm.deterministic_fields());
        assert_eq!(first.deterministic_fields(), stale.deterministic_fields());
        // The refreshed entry serves hits again.
        engine.run_job(&job).expect("hits after refresh");
        assert_eq!(engine.result_cache_stats().hits, 2);
    }

    #[test]
    fn run_job_round_trips_through_the_cache() {
        let engine = Engine::default();
        let job = SearchJob::new(3, 1 << 16, 8, 123);
        let first = engine.run_job(&job).expect("runs");
        assert_eq!(engine.result_cache_stats().hits, 0);
        let second = engine.run_job(&job).expect("runs again");
        assert_eq!(engine.result_cache_stats().hits, 1);
        assert_eq!(first.deterministic_fields(), second.deterministic_fields());
        assert_eq!(second.wall_time_us, 0.0, "hits report lookup-only time");
    }

    #[test]
    fn engine_handle_shares_one_engine_across_threads() {
        fn assert_shareable<T: Send + Sync + Clone>() {}
        assert_shareable::<EngineHandle>();
        let handle = EngineHandle::new(EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        });
        let jobs = generate_mixed_batch(12, 3);
        let reference = handle.run_batch(&jobs);
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let handle = handle.clone();
                let jobs = jobs.clone();
                std::thread::spawn(move || handle.run_batch(&jobs))
            })
            .collect();
        for submitter in submitters {
            let report = submitter.join().expect("submitter thread");
            for (a, b) in reference.results.iter().zip(&report.results) {
                assert_eq!(a.deterministic_fields(), b.deterministic_fields());
            }
        }
        // All submissions hit the one shared result cache.
        assert!(handle.result_cache_stats().hits >= 36);
    }

    #[test]
    fn report_round_trips_through_json() {
        let engine = Engine::default();
        let jobs = generate_mixed_batch(8, 11);
        let report = engine.run_batch(&jobs);
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: BatchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(report, back);
    }
}
