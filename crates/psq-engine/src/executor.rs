//! Batch execution over the worker pool.
//!
//! The [`Engine`] owns a persistent `psq_parallel::WorkerPool` and a shared
//! [`Planner`] (with its memoised plan cache). [`Engine::run_batch`]
//! validates and plans every job, fans the accepted ones out over the pool,
//! and aggregates results into [`BatchMetrics`]. Ordering and determinism:
//!
//! * results come back in job-submission order regardless of which worker
//!   ran what (`WorkerPool::map` reassembles by submission index);
//! * each job's randomness comes from its own seed, so a batch's results —
//!   wall times aside — are bit-identical run to run, across thread counts,
//!   and identical to executing each job alone.

use crate::backends;
use crate::metrics::BatchMetrics;
use crate::planner::{ExecutionPlan, Planner};
use crate::spec::{RejectedJob, SearchJob, SearchResult};
use psq_parallel::WorkerPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Engine construction options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads; `None` sizes the pool to the machine.
    pub threads: Option<usize>,
}

/// A fully executed batch: per-job results, rejects, and aggregate metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Results in job-submission order.
    pub results: Vec<SearchResult>,
    /// Jobs that failed validation or planning, with reasons.
    pub rejected: Vec<RejectedJob>,
    /// Aggregate statistics.
    pub metrics: BatchMetrics,
}

/// The batched, multi-backend partial-search execution engine.
pub struct Engine {
    planner: Arc<Planner>,
    pool: WorkerPool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl Engine {
    /// Builds an engine with its own planner and worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let pool = match config.threads {
            Some(threads) => WorkerPool::new(threads),
            None => WorkerPool::with_default_threads(),
        };
        Self {
            planner: Arc::new(Planner::new()),
            pool,
        }
    }

    /// The shared planner (schedule cache statistics live here).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Worker threads serving this engine.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Executes one job synchronously on the calling thread (the single-job
    /// serving path; also what each pool worker runs per batched job).
    pub fn run_job(&self, job: &SearchJob) -> Result<SearchResult, String> {
        run_one(&self.planner, job)
    }

    /// Executes a batch: plans every job, fans the accepted ones out over
    /// the pool, and aggregates metrics.
    pub fn run_batch(&self, jobs: &[SearchJob]) -> BatchReport {
        let started = Instant::now();
        // Plan on the submitting thread: planning is cheap (cache-memoised),
        // failing fast keeps rejects out of the pool, and handing the
        // resolved plan to the worker keeps the plan-cache lock off the
        // execution hot path.
        let mut rejected = Vec::new();
        let mut accepted: Vec<(SearchJob, ExecutionPlan)> = Vec::with_capacity(jobs.len());
        for job in jobs {
            match self.planner.plan(job) {
                Ok(plan) => accepted.push((*job, plan)),
                Err(reason) => rejected.push(RejectedJob {
                    job_id: job.id,
                    reason,
                }),
            }
        }
        let tasks: Vec<_> = accepted
            .into_iter()
            .map(|(job, plan)| move || execute_planned(&job, &plan))
            .collect();
        let results = self.pool.map(tasks);
        let wall_time_s = started.elapsed().as_secs_f64();
        let metrics = BatchMetrics::aggregate(
            &results,
            rejected.len() as u64,
            wall_time_s,
            self.planner.cache().stats(),
        );
        BatchReport {
            results,
            rejected,
            metrics,
        }
    }
}

/// Plans and executes one job, stamping its wall time.
fn run_one(planner: &Planner, job: &SearchJob) -> Result<SearchResult, String> {
    let plan = planner.plan(job)?;
    Ok(execute_planned(job, &plan))
}

/// Executes an already-planned job, stamping its wall time.
fn execute_planned(job: &SearchJob, plan: &ExecutionPlan) -> SearchResult {
    let started = Instant::now();
    let mut result = backends::execute(job, plan);
    result.wall_time_us = started.elapsed().as_secs_f64() * 1e6;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate_mixed_batch, BackendHint};

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let engine = Engine::new(EngineConfig { threads: Some(4) });
        let jobs: Vec<SearchJob> = (0..40)
            .map(|id| SearchJob::new(id, 1 << 10, 4, (id * 37) % (1 << 10)))
            .collect();
        let report = engine.run_batch(&jobs);
        assert_eq!(report.results.len(), 40);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
        }
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn batch_matches_single_job_execution_bit_for_bit() {
        let engine = Engine::new(EngineConfig { threads: Some(8) });
        let jobs = generate_mixed_batch(24, 7);
        let report = engine.run_batch(&jobs);
        let solo = Engine::new(EngineConfig { threads: Some(1) });
        for (job, batched) in jobs.iter().zip(&report.results) {
            let alone = solo.run_job(job).expect("runs alone");
            assert_eq!(
                batched.deterministic_fields(),
                alone.deterministic_fields(),
                "job {} diverged between batch and solo execution",
                job.id
            );
        }
    }

    #[test]
    fn invalid_jobs_are_rejected_not_fatal() {
        let engine = Engine::default();
        let mut jobs = vec![SearchJob::new(0, 1 << 10, 4, 5)];
        jobs.push(SearchJob::new(1, 10, 7, 5)); // k does not divide n
        jobs.push(SearchJob::new(2, 1 << 10, 4, 1 << 11)); // target outside
        jobs.push(SearchJob::new(3, 96, 4, 5).with_backend(BackendHint::Circuit)); // not pow2
        let report = engine.run_batch(&jobs);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.rejected.len(), 3);
        assert_eq!(report.metrics.jobs, 1);
        assert_eq!(report.metrics.rejected, 3);
        assert_eq!(
            report.rejected.iter().map(|r| r.job_id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn metrics_reflect_the_batch() {
        let engine = Engine::default();
        let jobs = generate_mixed_batch(32, 3);
        let report = engine.run_batch(&jobs);
        let m = &report.metrics;
        assert_eq!(m.jobs, 32);
        assert_eq!(m.backend_jobs.total(), 32);
        assert!(
            m.backend_jobs.backends_used() >= 4,
            "mixed batch spans backends"
        );
        assert!(m.throughput_jobs_per_s > 0.0);
        assert!(m.total_queries > 0);
        assert!(m.latency_us_max >= m.latency_us_p50);
        assert!(
            m.jobs_correct >= 30,
            "partial search should almost never miss"
        );
        // Mixed batches repeat (n, k, ε) shapes: the cache must be hitting.
        assert!(m.plan_cache.hits > 0);
        assert_eq!(m.plan_cache.entries, m.plan_cache.misses);
    }

    #[test]
    fn report_round_trips_through_json() {
        let engine = Engine::default();
        let jobs = generate_mixed_batch(8, 11);
        let report = engine.run_batch(&jobs);
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: BatchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(report, back);
    }
}
