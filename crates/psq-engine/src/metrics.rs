//! Batch-level aggregation: throughput, latency percentiles, accuracy and
//! per-backend tallies, all serialisable for the engine's JSON output —
//! plus the engine's always-on observability registry ([`EngineObs`]), the
//! lock-free per-stage histograms the future self-calibrating planner will
//! read.

use crate::cache::ResultCacheStats;
use crate::planner::PlanCacheStats;
use crate::spec::{Backend, SearchResult};
use psq_obs::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// The single nearest-rank percentile implementation now lives in `psq-obs`;
// re-exported here because this path was public before the promotion.
pub use psq_obs::percentile;

/// The engine's always-on observability registry: one lock-free histogram
/// per pipeline stage, recorded from the hot paths (planning, result-cache
/// lookup, and per-backend execution) and cheap enough to leave enabled at
/// full throughput (a few relaxed atomic adds per job).
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Planner time per job (memoised plan-cache path included).
    pub plan: Histogram,
    /// Result-cache lookup time per job (hits and misses alike).
    pub cache_lookup: Histogram,
    /// Execution wall time per backend, indexed by [`Backend::index`].
    execute: [Histogram; Backend::ALL.len()],
}

impl EngineObs {
    /// An empty registry. Calibrates the coarse span clock as a side
    /// effect, so the one-off cost lands at engine construction rather
    /// than inside the first job's plan span.
    pub fn new() -> Self {
        psq_obs::clock::calibrate();
        Self::default()
    }

    /// Records one execution wall time for `backend`, in microseconds.
    #[inline]
    pub fn record_execute(&self, backend: Backend, us: f64) {
        self.execute[backend.index()].record(us);
    }

    /// The execution-latency histogram for `backend`.
    pub fn execute_histogram(&self, backend: Backend) -> &Histogram {
        &self.execute[backend.index()]
    }

    /// A serialisable point-in-time view (backends that never executed are
    /// omitted, so idle engines serialise compactly).
    pub fn snapshot(&self) -> EngineObsSnapshot {
        let mut backend_latency = BTreeMap::new();
        for backend in Backend::ALL {
            let snap = self.execute[backend.index()].snapshot();
            if !snap.is_empty() {
                backend_latency.insert(backend, snap);
            }
        }
        EngineObsSnapshot {
            plan_us: self.plan.snapshot(),
            cache_lookup_us: self.cache_lookup.snapshot(),
            backend_latency,
        }
    }
}

/// A serialisable snapshot of [`EngineObs`], cumulative over the engine's
/// lifetime. Shard snapshots merge per-field via
/// [`HistogramSnapshot::merge`] for the planned multi-worker tier.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineObsSnapshot {
    /// Planner time per job, microseconds.
    pub plan_us: HistogramSnapshot,
    /// Result-cache lookup time per job, microseconds.
    pub cache_lookup_us: HistogramSnapshot,
    /// Execution wall time per backend (only backends that ran).
    pub backend_latency: BTreeMap<Backend, HistogramSnapshot>,
}

/// Jobs executed per backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BackendTally {
    /// Jobs on the reduced simulator.
    pub reduced: u64,
    /// Jobs on the state-vector simulator.
    pub statevector: u64,
    /// Jobs on the gate-level circuit path.
    pub circuit: u64,
    /// Jobs on the deterministic classical scan.
    pub classical_deterministic: u64,
    /// Jobs on the randomized classical scan.
    pub classical_randomized: u64,
    /// Full-address jobs on the recursive descent.
    pub recursive: u64,
    /// Jobs on the sparse amplitude-class simulator.
    pub sparse: u64,
}

impl BackendTally {
    /// Increments the count for `backend`.
    pub fn record(&mut self, backend: Backend) {
        match backend {
            Backend::Reduced => self.reduced += 1,
            Backend::StateVector => self.statevector += 1,
            Backend::Circuit => self.circuit += 1,
            Backend::ClassicalDeterministic => self.classical_deterministic += 1,
            Backend::ClassicalRandomized => self.classical_randomized += 1,
            Backend::Recursive => self.recursive += 1,
            Backend::Sparse => self.sparse += 1,
        }
    }

    /// Total jobs tallied.
    pub fn total(&self) -> u64 {
        self.reduced
            + self.statevector
            + self.circuit
            + self.classical_deterministic
            + self.classical_randomized
            + self.recursive
            + self.sparse
    }

    /// How many distinct backends saw at least one job.
    pub fn backends_used(&self) -> u32 {
        [
            self.reduced,
            self.statevector,
            self.circuit,
            self.classical_deterministic,
            self.classical_randomized,
            self.recursive,
            self.sparse,
        ]
        .iter()
        .filter(|&&c| c > 0)
        .count() as u32
    }
}

/// Aggregated statistics for one executed batch.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Jobs executed successfully.
    pub jobs: u64,
    /// Jobs rejected before execution (validation or planning failure).
    pub rejected: u64,
    /// End-to-end batch wall time in seconds (submission to last result).
    pub wall_time_s: f64,
    /// Jobs per second of batch wall time.
    pub throughput_jobs_per_s: f64,
    /// Search trials across all jobs.
    pub total_trials: u64,
    /// Oracle queries charged across all jobs.
    pub total_queries: u64,
    /// Jobs whose majority answer was the true block.
    pub jobs_correct: u64,
    /// Mean of the per-job success estimates.
    pub mean_success_estimate: f64,
    /// Median per-job latency in microseconds.
    pub latency_us_p50: f64,
    /// 90th-percentile per-job latency in microseconds.
    pub latency_us_p90: f64,
    /// 99th-percentile per-job latency in microseconds.
    pub latency_us_p99: f64,
    /// Slowest per-job latency in microseconds.
    pub latency_us_max: f64,
    /// Partial-search levels run by recursive full-address jobs (every
    /// level is one partial search on a database `K` times smaller than the
    /// last; `O(log N)` per trial).
    pub recursive_levels: u64,
    /// Oracle queries charged by recursive full-address jobs (so
    /// `recursive_queries / recursive_levels` tracks the geometric decay of
    /// per-level cost down the descent).
    pub recursive_queries: u64,
    /// Jobs per backend.
    pub backend_jobs: BackendTally,
    /// Execution-latency histogram per backend over this batch's *executed*
    /// jobs (cache-served repeats, which report `wall_time_us == 0`, are
    /// excluded so the histograms reflect true backend cost — what the
    /// self-calibrating planner will read). Percentile semantics are
    /// [`HistogramSnapshot::percentile`]'s.
    pub backend_latency: BTreeMap<Backend, HistogramSnapshot>,
    /// Plan-cache behaviour during the batch.
    pub plan_cache: PlanCacheStats,
    /// Result-cache behaviour (cumulative over the engine's lifetime; all
    /// zeros when the cache is disabled).
    pub result_cache: ResultCacheStats,
}

impl BatchMetrics {
    /// Aggregates `results` (plus rejection and cache counters) into batch
    /// metrics.
    pub fn aggregate(
        results: &[SearchResult],
        rejected: u64,
        wall_time_s: f64,
        plan_cache: PlanCacheStats,
        result_cache: ResultCacheStats,
    ) -> Self {
        let mut tally = BackendTally::default();
        let mut total_queries = 0u64;
        let mut total_trials = 0u64;
        let mut jobs_correct = 0u64;
        let mut success_sum = 0.0;
        let mut recursive_levels = 0u64;
        let mut recursive_queries = 0u64;
        let mut latencies: Vec<f64> = Vec::with_capacity(results.len());
        let backend_histograms: [Histogram; Backend::ALL.len()] = Default::default();
        for r in results {
            tally.record(r.backend);
            total_queries += r.queries;
            total_trials += u64::from(r.trials);
            jobs_correct += u64::from(r.correct);
            success_sum += r.success_estimate;
            if r.backend == Backend::Recursive {
                recursive_levels += u64::from(r.levels);
                recursive_queries += r.queries;
            }
            latencies.push(r.wall_time_us);
            // Cache-served repeats carry wall_time_us == 0: skip them so the
            // per-backend histograms measure execution, not lookups.
            if r.wall_time_us > 0.0 {
                backend_histograms[r.backend.index()].record(r.wall_time_us);
            }
        }
        let mut backend_latency = BTreeMap::new();
        for backend in Backend::ALL {
            let snap = backend_histograms[backend.index()].snapshot();
            if !snap.is_empty() {
                backend_latency.insert(backend, snap);
            }
        }
        latencies.sort_by(f64::total_cmp);
        let jobs = results.len() as u64;
        Self {
            jobs,
            rejected,
            wall_time_s,
            throughput_jobs_per_s: if wall_time_s > 0.0 {
                jobs as f64 / wall_time_s
            } else {
                0.0
            },
            total_trials,
            total_queries,
            jobs_correct,
            mean_success_estimate: if jobs > 0 {
                success_sum / jobs as f64
            } else {
                0.0
            },
            recursive_levels,
            recursive_queries,
            latency_us_p50: percentile(&latencies, 0.50),
            latency_us_p90: percentile(&latencies, 0.90),
            latency_us_p99: percentile(&latencies, 0.99),
            latency_us_max: latencies.last().copied().unwrap_or(0.0),
            backend_jobs: tally,
            backend_latency,
            plan_cache,
            result_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(backend: Backend, queries: u64, correct: bool, wall: f64) -> SearchResult {
        SearchResult {
            job_id: 0,
            backend,
            block_found: 0,
            true_block: if correct { 0 } else { 1 },
            correct,
            address_found: (backend == Backend::Recursive).then_some(0),
            levels: if backend == Backend::Recursive { 4 } else { 0 },
            queries,
            success_estimate: if correct { 1.0 } else { 0.0 },
            trials: 2,
            trials_correct: 2 * u32::from(correct),
            wall_time_us: wall,
        }
    }

    #[test]
    fn aggregation_counts_and_percentiles() {
        let results: Vec<SearchResult> = (1..=100)
            .map(|i| result(Backend::Reduced, 10, i % 10 != 0, i as f64))
            .collect();
        let m = BatchMetrics::aggregate(
            &results,
            3,
            2.0,
            PlanCacheStats::default(),
            ResultCacheStats::default(),
        );
        assert_eq!(m.jobs, 100);
        assert_eq!(m.rejected, 3);
        assert_eq!(m.total_queries, 1000);
        assert_eq!(m.total_trials, 200);
        assert_eq!(m.jobs_correct, 90);
        assert_eq!(m.throughput_jobs_per_s, 50.0);
        assert_eq!(m.latency_us_p50, 50.0);
        assert_eq!(m.latency_us_p90, 90.0);
        assert_eq!(m.latency_us_p99, 99.0);
        assert_eq!(m.latency_us_max, 100.0);
        assert_eq!(m.backend_jobs.reduced, 100);
        assert_eq!(m.backend_jobs.backends_used(), 1);
    }

    #[test]
    fn recursive_counters_aggregate_levels_and_queries() {
        let results = vec![
            result(Backend::Recursive, 100, true, 1.0),
            result(Backend::Recursive, 60, true, 1.0),
            result(Backend::Reduced, 40, true, 1.0),
        ];
        let m = BatchMetrics::aggregate(
            &results,
            0,
            1.0,
            PlanCacheStats::default(),
            ResultCacheStats::default(),
        );
        assert_eq!(m.backend_jobs.recursive, 2);
        assert_eq!(m.recursive_levels, 8, "4 levels per recursive result");
        assert_eq!(m.recursive_queries, 160, "block queries not counted");
        assert_eq!(m.total_queries, 200);
    }

    #[test]
    fn empty_batch_is_all_zeros() {
        let m = BatchMetrics::aggregate(
            &[],
            0,
            0.0,
            PlanCacheStats::default(),
            ResultCacheStats::default(),
        );
        assert_eq!(m.jobs, 0);
        assert_eq!(m.throughput_jobs_per_s, 0.0);
        assert_eq!(m.latency_us_p50, 0.0);
    }

    #[test]
    fn backend_latency_histograms_cover_executed_jobs_only() {
        let results = vec![
            result(Backend::Reduced, 10, true, 100.0),
            result(Backend::Reduced, 10, true, 200.0),
            result(Backend::Reduced, 10, true, 0.0), // cache-served repeat
            result(Backend::Recursive, 50, true, 900.0),
        ];
        let m = BatchMetrics::aggregate(
            &results,
            0,
            1.0,
            PlanCacheStats::default(),
            ResultCacheStats::default(),
        );
        let reduced = &m.backend_latency[&Backend::Reduced];
        assert_eq!(reduced.count, 2, "the wall_time_us == 0 hit is excluded");
        assert_eq!(reduced.max_us, 200.0);
        let recursive = &m.backend_latency[&Backend::Recursive];
        assert_eq!(recursive.count, 1);
        assert_eq!(recursive.p99(), 900.0);
        assert!(
            !m.backend_latency.contains_key(&Backend::Circuit),
            "idle backends are omitted"
        );
        let json = serde_json::to_string(&m).unwrap();
        let back: BatchMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn engine_obs_snapshots_round_trip_and_merge() {
        let obs = EngineObs::new();
        obs.plan.record(3.0);
        obs.plan.record(5.0);
        obs.cache_lookup.record(0.4);
        obs.record_execute(Backend::StateVector, 450.0);
        obs.record_execute(Backend::StateVector, 900.0);
        let snap = obs.snapshot();
        assert_eq!(snap.plan_us.count, 2);
        assert_eq!(snap.cache_lookup_us.count, 1);
        assert_eq!(snap.backend_latency[&Backend::StateVector].count, 2);
        assert_eq!(snap.backend_latency.len(), 1, "idle backends omitted");
        let json = serde_json::to_string(&snap).unwrap();
        let back: EngineObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        // Shard merging: two engines' snapshots fold into the union.
        let other = EngineObs::new();
        other.record_execute(Backend::StateVector, 100.0);
        let mut merged = snap.backend_latency[&Backend::StateVector].clone();
        merged.merge(&other.snapshot().backend_latency[&Backend::StateVector]);
        assert_eq!(merged.count, 3);
        assert_eq!(merged.max_us, 900.0);
    }

    #[test]
    fn tally_round_trips_through_json() {
        let mut tally = BackendTally::default();
        tally.record(Backend::Circuit);
        tally.record(Backend::Circuit);
        tally.record(Backend::ClassicalRandomized);
        let json = serde_json::to_string(&tally).unwrap();
        let back: BackendTally = serde_json::from_str(&json).unwrap();
        assert_eq!(tally, back);
        assert_eq!(back.total(), 3);
        assert_eq!(back.backends_used(), 2);
    }
}
