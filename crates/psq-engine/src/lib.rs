//! Batched, multi-backend partial-search execution engine.
//!
//! The rest of the workspace reproduces Grover & Radhakrishnan's partial
//! search as a library: simulators (`psq-sim`), the three-step algorithm
//! (`psq-partial`), classical baselines (`psq-classical`) and bounds
//! (`psq-bounds`). This crate turns that library into a *serving surface*:
//!
//! * [`spec`] — serialisable [`SearchJob`]/[`SearchResult`] wire types, plus
//!   a deterministic mixed-batch generator for load tests;
//! * [`planner`] — a cost model that picks the cheapest backend honouring
//!   each job's error target (block-symmetric reduced simulator, full state
//!   vector, gate-level circuit, or the classical zero-error scans), with a
//!   memoised `(N, K, ε) → (ℓ1, ℓ2)` schedule cache shared across workers;
//!   for recursive full-address jobs it walks the descent's level sizes
//!   through that cache and picks the per-level backend cutoff;
//! * [`backends`] — bit-reproducible single-job runners for each backend,
//!   including the recursive full-address descent (`Backend::Recursive`,
//!   requested via [`SearchJob::full_address`] or the serving layer's
//!   `"full_address": true` field);
//! * [`cache`] — a sharded memoised result cache: repeated jobs (within a
//!   batch or across batches) skip execution entirely;
//! * [`executor`] — the [`Engine`]: batch fan-out over
//!   `psq_parallel::WorkerPool` (work-stealing per-worker deques) with
//!   per-job seeding and submission-order results;
//! * [`sweep`] — noise-sweep jobs: a grid over `(p, K, ε)` expanded into
//!   ordinary per-point jobs (planner, pool, scratch and result cache all
//!   reused) with a fitted degradation threshold per `(K, ε)` slice;
//! * [`metrics`] — throughput/latency/accuracy aggregation per batch, plus
//!   the always-on [`EngineObs`] registry: lock-free per-stage latency
//!   histograms (plan, cache lookup, execute per backend) from `psq-obs`,
//!   with per-stage NDJSON trace events behind `--trace[=stderr|FILE]`.
//!
//! The `psq-engine` binary wraps [`Engine`] in a JSON-in/JSON-out pipe:
//!
//! ```text
//! psq-engine --gen 100 > jobs.json   # make a mixed demo batch
//! psq-engine jobs.json               # run it, results + metrics on stdout
//! ```

pub mod backends;
pub mod cache;
pub mod cli;
pub mod executor;
pub mod metrics;
pub mod planner;
pub mod spec;
pub mod sweep;

pub use cache::{ResultCache, ResultCacheStats};
pub use cli::EngineFlags;
pub use executor::{BatchReport, Engine, EngineConfig, EngineHandle};
pub use metrics::{percentile, BackendTally, BatchMetrics, EngineObs, EngineObsSnapshot};
pub use planner::{
    CostEstimate, CostModel, ExecutionPlan, PlanCache, PlanCacheStats, PlannedSchedule, Planner,
};
pub use spec::{
    generate_mixed_batch, Backend, BackendHint, NoiseSpec, RejectedJob, SearchJob, SearchResult,
};
pub use sweep::{
    DegradationThreshold, SweepPoint, SweepReport, SweepSpec, DEFAULT_MAX_SWEEP_POINTS,
};
