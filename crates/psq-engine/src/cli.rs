//! Shared command-line parsing for the engine-backed binaries.
//!
//! `psq-engine` (one-shot batch) and `psq-serve` (streaming server) expose
//! the same engine knobs — worker threads and the result cache — so the
//! flag parsing lives here once. Each binary folds [`EngineFlags::accept`]
//! into its own argument loop and appends [`ENGINE_FLAGS_HELP`] to its
//! `--help` text, so the flags stay documented and behave identically in
//! both surfaces.

use crate::cache::DEFAULT_RESULT_CACHE_CAPACITY;
use crate::executor::EngineConfig;

/// Help text for the flags [`EngineFlags`] parses, one per line, aligned for
/// terminal display. Binaries append their own flags after this block.
pub const ENGINE_FLAGS_HELP: &str = "  \
--threads N                  worker threads (default: machine parallelism)
  --no-result-cache            disable the memoised result cache (repeated
                               jobs re-execute; honest cold benchmarking)
  --result-cache-capacity N    approximate bound on cached results before
                               second-chance eviction kicks in (default 65536)
  --result-cache-ttl-ms N      expire cached results N milliseconds after
                               insertion (default: keep until evicted)
  --trace[=stderr|FILE]        emit per-stage NDJSON trace events
                               ({\"type\":\"trace\",...}) to stderr or FILE;
                               the PSQ_TRACE environment variable (same
                               stderr|FILE values) enables tracing without
                               the flag — the flag wins when both are set";

/// Environment variable enabling the NDJSON trace stream without a flag
/// (`stderr` or a file path, like `--trace=`). `--trace` wins when both
/// are given; an empty value counts as unset.
pub const PSQ_TRACE_ENV: &str = "PSQ_TRACE";

/// Engine-construction flags shared by every engine-backed binary.
#[derive(Clone, Debug)]
pub struct EngineFlags {
    /// `--threads N`; `None` sizes the pool to the machine.
    pub threads: Option<usize>,
    /// `--no-result-cache` clears this.
    pub result_cache: bool,
    /// `--result-cache-capacity N`.
    pub result_cache_capacity: usize,
    /// `--result-cache-ttl-ms N`; `None` keeps results until evicted.
    pub result_cache_ttl_ms: Option<u64>,
    /// `--trace[=stderr|FILE]`: where the NDJSON trace stream goes
    /// (`"stderr"` or a file path); `None` leaves tracing disabled.
    pub trace: Option<String>,
}

impl Default for EngineFlags {
    fn default() -> Self {
        Self {
            threads: None,
            result_cache: true,
            result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
            result_cache_ttl_ms: None,
            trace: None,
        }
    }
}

impl EngineFlags {
    /// Tries to consume `arg` (and its value, pulled from `args`). Returns
    /// `Ok(true)` when the flag was one of ours, `Ok(false)` when the caller
    /// should handle it, and `Err` for a recognised flag with a missing or
    /// malformed value.
    pub fn accept(
        &mut self,
        arg: &str,
        args: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--threads" => {
                self.threads = Some(require_value(arg, args)?);
                Ok(true)
            }
            "--no-result-cache" => {
                self.result_cache = false;
                Ok(true)
            }
            "--result-cache-capacity" => {
                self.result_cache_capacity = require_value(arg, args)?;
                Ok(true)
            }
            "--result-cache-ttl-ms" => {
                self.result_cache_ttl_ms = Some(require_value(arg, args)?);
                Ok(true)
            }
            "--trace" => {
                self.trace = Some("stderr".to_string());
                Ok(true)
            }
            _ => match arg.strip_prefix("--trace=") {
                Some("") => Err("--trace= needs a target (stderr or a file path)".to_string()),
                Some(target) => {
                    self.trace = Some(target.to_string());
                    Ok(true)
                }
                None => Ok(false),
            },
        }
    }

    /// Installs the NDJSON trace sink these flags ask for. Without
    /// `--trace`, the `PSQ_TRACE` environment variable (same
    /// `stderr`/`FILE` values) is consulted, so a supervisor — the
    /// front-tier router collecting its workers' streams — can switch
    /// tracing on in spawned processes without CLI plumbing. Precedence:
    /// the flag wins; an empty `PSQ_TRACE` counts as unset. Call once at
    /// binary start-up, before serving jobs.
    pub fn install_trace(&self) -> Result<(), String> {
        match &self.trace {
            Some(target) => psq_obs::trace::install_target(Some(target)),
            None => match std::env::var(PSQ_TRACE_ENV) {
                Ok(target) if !target.is_empty() => psq_obs::trace::install_target(Some(&target)),
                _ => Ok(()),
            },
        }
    }

    /// The [`EngineConfig`] these flags describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            result_cache: self.result_cache,
            result_cache_capacity: self.result_cache_capacity,
            result_cache_ttl: self
                .result_cache_ttl_ms
                .map(std::time::Duration::from_millis),
        }
    }
}

/// Pulls and parses the value following a flag, with a flag-named error.
pub fn require_value<T: std::str::FromStr>(
    flag: &str,
    args: &mut dyn Iterator<Item = String>,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid value `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<EngineFlags, String> {
        let mut flags = EngineFlags::default();
        let mut args = tokens.iter().map(|s| s.to_string());
        while let Some(arg) = args.next() {
            if !flags.accept(&arg, &mut args)? {
                return Err(format!("unknown flag {arg}"));
            }
        }
        Ok(flags)
    }

    #[test]
    fn parses_every_shared_flag() {
        let flags = parse(&[
            "--threads",
            "3",
            "--no-result-cache",
            "--result-cache-capacity",
            "128",
            "--result-cache-ttl-ms",
            "1500",
        ])
        .expect("valid flags");
        assert_eq!(flags.threads, Some(3));
        assert!(!flags.result_cache);
        assert_eq!(flags.result_cache_capacity, 128);
        assert_eq!(flags.result_cache_ttl_ms, Some(1500));
        let config = flags.engine_config();
        assert_eq!(config.threads, Some(3));
        assert!(!config.result_cache);
        assert_eq!(config.result_cache_capacity, 128);
        assert_eq!(
            config.result_cache_ttl,
            Some(std::time::Duration::from_millis(1500))
        );
    }

    #[test]
    fn rejects_missing_and_malformed_values() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "lots"]).is_err());
        assert!(parse(&["--result-cache-capacity", "-1"]).is_err());
        assert!(parse(&["--result-cache-ttl-ms"]).is_err());
        assert!(parse(&["--result-cache-ttl-ms", "soon"]).is_err());
    }

    #[test]
    fn parses_the_trace_flag_forms() {
        assert_eq!(parse(&[]).expect("no flags").trace, None);
        assert_eq!(
            parse(&["--trace"]).expect("bare form").trace,
            Some("stderr".to_string())
        );
        assert_eq!(
            parse(&["--trace=stderr"]).expect("explicit stderr").trace,
            Some("stderr".to_string())
        );
        assert_eq!(
            parse(&["--trace=/tmp/out.ndjson"])
                .expect("file form")
                .trace,
            Some("/tmp/out.ndjson".to_string())
        );
        assert!(parse(&["--trace="]).is_err(), "empty target rejected");
    }

    #[test]
    fn psq_trace_env_enables_tracing_and_the_flag_wins() {
        // Environment state is process-global, so the whole precedence
        // story lives in one test. Start from a clean slate.
        psq_obs::trace::disable();
        std::env::remove_var(PSQ_TRACE_ENV);

        // No flag, no env: tracing stays off.
        EngineFlags::default().install_trace().expect("no-op");
        assert!(!psq_obs::trace::enabled());

        // No flag, env set: the env target is installed.
        std::env::set_var(PSQ_TRACE_ENV, "stderr");
        EngineFlags::default().install_trace().expect("env target");
        assert!(psq_obs::trace::enabled());
        psq_obs::trace::disable();

        // Empty env counts as unset.
        std::env::set_var(PSQ_TRACE_ENV, "");
        EngineFlags::default().install_trace().expect("empty env");
        assert!(!psq_obs::trace::enabled());

        // Flag wins: with the env pointing at an unopenable path, the
        // flag's stderr target must install without ever consulting it.
        std::env::set_var(PSQ_TRACE_ENV, "/nonexistent-dir/x/trace.ndjson");
        let flags = parse(&["--trace"]).expect("flag");
        flags.install_trace().expect("flag beats env");
        assert!(psq_obs::trace::enabled());
        psq_obs::trace::disable();

        // The env alone would have failed on that path.
        assert!(EngineFlags::default().install_trace().is_err());
        std::env::remove_var(PSQ_TRACE_ENV);
    }

    #[test]
    fn leaves_unknown_flags_to_the_caller() {
        assert!(parse(&["--explain"]).is_err(), "not a shared flag");
        let mut flags = EngineFlags::default();
        let mut none = std::iter::empty::<String>();
        assert_eq!(flags.accept("--pretty", &mut none), Ok(false));
    }

    #[test]
    fn defaults_match_engine_config_defaults() {
        let config = EngineFlags::default().engine_config();
        let reference = EngineConfig::default();
        assert_eq!(config.threads, reference.threads);
        assert_eq!(config.result_cache, reference.result_cache);
        assert_eq!(
            config.result_cache_capacity,
            reference.result_cache_capacity
        );
        assert_eq!(config.result_cache_ttl, reference.result_cache_ttl);
    }

    #[test]
    fn help_text_documents_each_flag() {
        for flag in [
            "--threads",
            "--no-result-cache",
            "--result-cache-capacity",
            "--result-cache-ttl-ms",
            "--trace",
        ] {
            assert!(ENGINE_FLAGS_HELP.contains(flag), "help must cover {flag}");
        }
    }
}
