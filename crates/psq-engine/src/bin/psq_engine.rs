//! `psq-engine` — the workspace's serving surface as a JSON pipe.
//!
//! ```text
//! psq-engine [OPTIONS] [JOBS.json]      read a job batch (file or stdin)
//! psq-engine --gen N [--seed S]         emit a mixed demo batch instead
//! ```
//!
//! Input: a JSON array of jobs, or an object `{"jobs": [...]}`.
//! Output: `{"results": [...], "rejected": [...], "metrics": {...}}`.
//! Run `psq-engine --help` for the full flag list (shared engine flags are
//! parsed by `psq_engine::cli`, the same module `psq-serve` uses).

use psq_engine::cli::{self, EngineFlags};
use psq_engine::{Engine, SearchJob};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    path: Option<String>,
    engine: EngineFlags,
    pretty: bool,
    metrics_only: bool,
    explain: bool,
    gen_count: Option<usize>,
    gen_seed: u64,
}

fn help() -> String {
    format!(
        "usage: psq-engine [OPTIONS] [JOBS.json]\n\
         \x20      psq-engine --gen N [--seed S] [--pretty]\n\
         \n\
         Reads a JSON job batch (file, or stdin when no path / `-`) and emits\n\
         {{\"results\": [...], \"rejected\": [...], \"metrics\": {{...}}}} on stdout.\n\
         With --gen, emits a deterministic mixed demo batch instead of running one.\n\
         \n\
         Engine options (shared with psq-serve):\n\
         {}\n\
         \n\
         Batch options:\n\
         \x20 --pretty                     indent the output JSON\n\
         \x20 --metrics-only               omit per-job results, print only batch metrics\n\
         \x20 --explain                    print the per-job cost-model table (every\n\
         \x20                              backend's estimated ops, feasibility, and\n\
         \x20                              whether it meets the error target) on stderr\n\
         \x20                              before running the batch\n\
         \x20 --gen N                      generate N demo jobs instead of executing\n\
         \x20 --seed S                     seed for --gen (default 1)\n\
         \x20 -h, --help                   this text",
        cli::ENGINE_FLAGS_HELP
    )
}

fn usage_error(message: &str) -> ! {
    eprintln!("psq-engine: {message}\n\n{}", help());
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut options = Options {
        path: None,
        engine: EngineFlags::default(),
        pretty: false,
        metrics_only: false,
        explain: false,
        gen_count: None,
        gen_seed: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match options.engine.accept(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => usage_error(&message),
        }
        match arg.as_str() {
            "--gen" => match cli::require_value(&arg, &mut args) {
                Ok(v) => options.gen_count = Some(v),
                Err(message) => usage_error(&message),
            },
            "--seed" => match cli::require_value(&arg, &mut args) {
                Ok(v) => options.gen_seed = v,
                Err(message) => usage_error(&message),
            },
            "--pretty" => options.pretty = true,
            "--metrics-only" => options.metrics_only = true,
            "--explain" => options.explain = true,
            "--help" | "-h" => {
                println!("{}", help());
                std::process::exit(0)
            }
            "-" => options.path = None,
            path if !path.starts_with("--") && options.path.is_none() => {
                options.path = Some(path.to_string())
            }
            other => usage_error(&format!("unrecognised argument `{other}`")),
        }
    }
    options
}

fn read_jobs(path: Option<&str>) -> Result<Vec<SearchJob>, String> {
    let text = match path {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buffer
        }
    };
    // Accept a bare array or an object wrapping it under "jobs".
    let value = serde_json::parse_value(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let array = match (&value, value.as_object().and_then(|o| o.get("jobs"))) {
        (serde_json::Value::Array(_), _) => &value,
        (_, Some(jobs)) => jobs,
        _ => return Err("expected a JSON array of jobs or {\"jobs\": [...]}".to_string()),
    };
    serde::Deserialize::deserialize(array).map_err(|e| format!("invalid job batch: {e}"))
}

fn main() -> ExitCode {
    let options = parse_options();

    if let Some(count) = options.gen_count {
        let jobs = psq_engine::generate_mixed_batch(count, options.gen_seed);
        let json = if options.pretty {
            serde_json::to_string_pretty(&jobs)
        } else {
            serde_json::to_string(&jobs)
        };
        println!("{}", json.expect("jobs serialise"));
        return ExitCode::SUCCESS;
    }

    let jobs = match read_jobs(options.path.as_deref()) {
        Ok(jobs) => jobs,
        Err(message) => {
            eprintln!("psq-engine: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(message) = options.engine.install_trace() {
        eprintln!("psq-engine: {message}");
        return ExitCode::FAILURE;
    }

    let engine = Engine::new(options.engine.engine_config());

    if options.explain {
        for job in &jobs {
            eprintln!(
                "job {} (n = {}, k = {}, err ≤ {}):",
                job.id, job.n, job.k, job.error_target
            );
            match engine.planner().explain(job) {
                Ok(estimates) => {
                    for est in estimates {
                        eprintln!(
                            "  {:<24} ops {:>12.3e}  feasible {}  meets-error {}",
                            est.backend.label(),
                            est.ops,
                            est.feasible,
                            est.meets_error_target
                        );
                    }
                }
                Err(reason) => eprintln!("  rejected: {reason}"),
            }
        }
    }

    let report = engine.run_batch(&jobs);

    if options.explain {
        // The pre-run table above is the cost *model*; this is what the
        // batch actually measured, from the psq-obs histograms.
        eprintln!("observed per-backend execution latency (us):");
        for (backend, hist) in &report.metrics.backend_latency {
            eprintln!(
                "  {:<24} jobs {:>6}  p50 {:>10.1}  p90 {:>10.1}  p99 {:>10.1}  max {:>10.1}",
                backend.label(),
                hist.count,
                hist.p50(),
                hist.p90(),
                hist.p99(),
                hist.max_us
            );
        }
        let obs = engine.obs_snapshot();
        eprintln!(
            "  {:<24} jobs {:>6}  p50 {:>10.1}  p90 {:>10.1}  p99 {:>10.1}  max {:>10.1}",
            "plan",
            obs.plan_us.count,
            obs.plan_us.p50(),
            obs.plan_us.p90(),
            obs.plan_us.p99(),
            obs.plan_us.max_us
        );
        eprintln!(
            "  {:<24} jobs {:>6}  p50 {:>10.1}  p90 {:>10.1}  p99 {:>10.1}  max {:>10.1}",
            "cache-lookup",
            obs.cache_lookup_us.count,
            obs.cache_lookup_us.p50(),
            obs.cache_lookup_us.p90(),
            obs.cache_lookup_us.p99(),
            obs.cache_lookup_us.max_us
        );
    }

    let json = if options.metrics_only {
        if options.pretty {
            serde_json::to_string_pretty(&report.metrics)
        } else {
            serde_json::to_string(&report.metrics)
        }
    } else if options.pretty {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    };
    println!("{}", json.expect("report serialises"));

    eprintln!(
        "psq-engine: {} job(s) on {} thread(s) in {:.3} s — {:.1} jobs/s, \
         {} rejected, {} backend(s), cache {}/{} hit/miss",
        report.metrics.jobs,
        engine.threads(),
        report.metrics.wall_time_s,
        report.metrics.throughput_jobs_per_s,
        report.metrics.rejected,
        report.metrics.backend_jobs.backends_used(),
        report.metrics.plan_cache.hits,
        report.metrics.plan_cache.misses,
    );

    if report.results.is_empty() && !report.rejected.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
