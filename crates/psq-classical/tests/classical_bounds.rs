//! Cross-module and property-based tests for the classical baselines.

use proptest::prelude::*;
use psq_classical::{adversary::ProbeOrder, analysis, full_search, partial_search};
use psq_math::stats::RunningStats;
use psq_sim::oracle::{Database, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_implemented_strategy_respects_the_appendix_a_bound() {
    // The bound is on the average over a uniform target; check it for the
    // deterministic algorithm by exact enumeration of all targets.
    for &(n, k) in &[(12u64, 3u64), (24, 2), (64, 8), (100, 5)] {
        let partition = Partition::new(n, k);
        let mut total = 0u64;
        for target in 0..n {
            let db = Database::new(n, target);
            let outcome = partial_search::deterministic_partial(&db, &partition);
            assert!(outcome.is_correct());
            total += outcome.queries;
        }
        let average = total as f64 / n as f64;
        let bound = analysis::appendix_a_lower_bound(n as f64, k as f64);
        assert!(average >= bound - 1e-9);
        // The deterministic block-by-block strategy is in fact optimal.
        assert!((average - bound).abs() < 1e-9);
    }
}

#[test]
fn randomized_partial_tracks_the_exact_expectation_not_just_the_asymptotic_one() {
    let n = 48u64;
    let k = 3u64;
    let partition = Partition::new(n, k);
    let mut rng = StdRng::seed_from_u64(19);
    let mut stats = RunningStats::new();
    for trial in 0..8000u64 {
        let db = Database::new(n, trial % n);
        stats.push(partial_search::randomized_partial(&db, &partition, &mut rng).queries as f64);
    }
    let exact = analysis::randomized_partial_expected_queries(n as f64, k as f64);
    let (lo, hi) = stats.confidence_interval(4.0);
    assert!(
        lo <= exact && exact <= hi,
        "exact {exact} outside [{lo}, {hi}]"
    );
}

#[test]
fn classical_full_search_is_quadratically_slower_than_grover_theory() {
    // Not a statement about this crate alone, but the comparison the paper's
    // introduction sets up: N/2 versus (π/4)√N.
    let n = 1u64 << 16;
    let classical = analysis::randomized_full_expected_queries(n as f64);
    let quantum = std::f64::consts::FRAC_PI_4 * (n as f64).sqrt();
    assert!(classical / quantum > 100.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_deterministic_partial_is_zero_error_and_within_worst_case(
        block_size in 1u64..12,
        k in 2u64..8,
        target_frac in 0.0f64..1.0,
    ) {
        let n = block_size * k;
        let target = (((n - 1) as f64) * target_frac).round() as u64;
        let partition = Partition::new(n, k);
        let db = Database::new(n, target);
        let outcome = partial_search::deterministic_partial(&db, &partition);
        prop_assert!(outcome.is_correct());
        prop_assert!(outcome.queries as f64
            <= analysis::deterministic_partial_worst_case(n as f64, k as f64));
    }

    #[test]
    fn prop_full_search_via_partial_always_finds_target(
        n in 2u64..200,
        target_frac in 0.0f64..1.0,
        k in 2u64..6,
    ) {
        let target = (((n - 1) as f64) * target_frac).round() as u64;
        let db = Database::new(n, target);
        let (found, queries) = partial_search::full_search_via_partial(&db, k);
        prop_assert_eq!(found, target);
        prop_assert!(queries <= n);
    }

    #[test]
    fn prop_probe_orders_never_beat_the_bound(
        block_size in 1u64..8,
        k in 2u64..6,
        seed in 0u64..1_000,
    ) {
        let n = block_size * k;
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let strategy = ProbeOrder::random(partition, &mut rng);
        let bound = analysis::appendix_a_lower_bound(n as f64, k as f64);
        prop_assert!(strategy.cost().average_queries >= bound - 1e-9);
    }

    #[test]
    fn prop_deterministic_scan_cost_equals_target_position(
        n in 2u64..300,
        target_frac in 0.0f64..1.0,
    ) {
        let target = (((n - 1) as f64) * target_frac).round() as u64;
        let db = Database::new(n, target);
        let outcome = full_search::deterministic_scan(&db);
        prop_assert!(outcome.is_correct());
        prop_assert_eq!(outcome.queries, (target + 1).min(n - 1));
    }
}
