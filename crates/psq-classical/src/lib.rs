//! Classical database search baselines (Section 1.1 and Appendix A).
//!
//! The paper opens by fixing the classical landscape: full search of an
//! unsorted `N`-item database with a unique marked item takes `N/2` expected
//! queries for zero-error randomized algorithms, and asking only for the
//! block (out of `K` equal blocks) that contains the item saves merely a
//! `1/K²` fraction.  This crate makes those statements executable:
//!
//! * [`full_search`] — deterministic and randomized zero-error full search
//!   against the instrumented [`psq_sim::oracle::Database`];
//! * [`partial_search`] — the deterministic (`N(1 − 1/K)` worst case) and
//!   randomized (`N/2·(1 − 1/K²)` expected) partial-search algorithms, plus
//!   the classical analogue of the paper's recursive reduction;
//! * [`analysis`] — the exact and asymptotic closed forms for all of the
//!   above;
//! * [`adversary`] — Appendix A's distributional lower bound as a checkable
//!   object: any probe strategy can be costed exactly and compared to the
//!   bound.

pub mod adversary;
pub mod analysis;
pub mod full_search;
pub mod partial_search;

pub use adversary::{minimum_average_cost, ProbeOrder, StrategyCost};
pub use analysis::{
    appendix_a_lower_bound, appendix_a_lower_bound_asymptotic, deterministic_partial_worst_case,
    randomized_full_expected_queries, randomized_partial_expected_queries,
    randomized_partial_expected_queries_asymptotic,
};
pub use full_search::{deterministic_scan, random_scan};
pub use partial_search::{deterministic_partial, full_search_via_partial, randomized_partial};
