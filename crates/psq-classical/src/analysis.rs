//! Closed-form expected-query analysis of classical search (Section 1.1 and
//! Appendix A).
//!
//! Every formula comes in two flavours: the *exact* discrete expectation of
//! the concrete algorithm implemented in this crate, and the *asymptotic*
//! expression quoted by the paper.  Tests pin the two to each other and the
//! Monte-Carlo runs in [`crate::partial_search`] pin the algorithms to the
//! exact forms.

/// Exact expected queries of randomized zero-error full search (probe a random
/// permutation, infer the last address): `((N−1)(N+2))/(2N)`.
pub fn randomized_full_expected_queries(n: f64) -> f64 {
    assert!(n >= 1.0);
    ((n - 1.0) * (n + 2.0)) / (2.0 * n)
}

/// The paper's asymptotic form of the same quantity: `N/2`.
pub fn randomized_full_expected_queries_asymptotic(n: f64) -> f64 {
    n / 2.0
}

/// Exact expected queries of the randomized partial-search algorithm
/// (exclude a uniformly random block, probe the other `M = N − N/K`
/// addresses in random order, infer on exhaustion):
///
/// `(1 − 1/K)·(M + 1)/2 + (1/K)·M`.
pub fn randomized_partial_expected_queries(n: f64, k: f64) -> f64 {
    assert!(k >= 1.0 && n >= k);
    let m = n - n / k;
    (1.0 - 1.0 / k) * (m + 1.0) / 2.0 + (1.0 / k) * m
}

/// The paper's asymptotic form: `N/2 · (1 − 1/K²)`.
pub fn randomized_partial_expected_queries_asymptotic(n: f64, k: f64) -> f64 {
    (n / 2.0) * (1.0 - 1.0 / (k * k))
}

/// Worst-case queries of the deterministic zero-error partial-search
/// algorithm: `N(1 − 1/K)` (probe everything outside one block).
pub fn deterministic_partial_worst_case(n: f64, k: f64) -> f64 {
    n * (1.0 - 1.0 / k)
}

/// Queries the deterministic partial algorithm *saves* compared with any
/// deterministic algorithm that solves full search with certainty (which
/// needs `N − 1` probes in the worst case): approximately `N/K`.
pub fn deterministic_partial_savings(n: f64, k: f64) -> f64 {
    (n - 1.0) - deterministic_partial_worst_case(n, k)
}

/// Appendix A's lower bound on the expected probes of any zero-error
/// randomized partial-search algorithm, in the exact discrete form
/// `(M(M+1)/2 + (N − M)·M)/N` with `M = N − N/K`.
///
/// Derivation (mirroring the appendix): a deterministic zero-error algorithm
/// is equivalent to a probe permutation plus the stopping rule "stop when the
/// target is found or when the unprobed addresses all lie in one block".  If
/// it probes `S` addresses before it could stop, a uniformly random target
/// costs `(Σ_{i≤S} i + (N − S)·S)/N` on average, which is increasing in `S`;
/// the smallest feasible `S` is `M`, giving the bound.  Averaging over the
/// algorithm's randomness cannot help (Yao / linearity of expectation).
pub fn appendix_a_lower_bound(n: f64, k: f64) -> f64 {
    assert!(k >= 1.0 && n >= k);
    let m = n - n / k;
    (m * (m + 1.0) / 2.0 + (n - m) * m) / n
}

/// The asymptotic statement of the Appendix-A bound: `N/2·(1 − 1/K²)`.
pub fn appendix_a_lower_bound_asymptotic(n: f64, k: f64) -> f64 {
    randomized_partial_expected_queries_asymptotic(n, k)
}

/// The average cost of the deterministic strategy that probes according to an
/// arbitrary permutation and stops when the target is found or only one block
/// remains uncovered.
///
/// `probes_before_stop` is the number `S` of addresses the permutation visits
/// before the unprobed remainder first fits inside a single block.
pub fn average_cost_for_stop_point(n: f64, probes_before_stop: f64) -> f64 {
    let s = probes_before_stop;
    assert!(s >= 0.0 && s <= n);
    (s * (s + 1.0) / 2.0 + (n - s) * s) / n
}

/// Relative saving of classical partial search over classical full search:
/// `1 − (expected partial / expected full)`, asymptotically `1/K²`.
pub fn classical_partial_relative_saving(k: f64) -> f64 {
    1.0 / (k * k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;

    #[test]
    fn exact_forms_converge_to_asymptotic_forms() {
        let n = 1e8;
        for &k in &[2.0, 3.0, 4.0, 8.0, 32.0] {
            let exact = randomized_partial_expected_queries(n, k);
            let asym = randomized_partial_expected_queries_asymptotic(n, k);
            assert!((exact / asym - 1.0).abs() < 1e-6, "k = {k}");
        }
        assert!(
            (randomized_full_expected_queries(n) / randomized_full_expected_queries_asymptotic(n)
                - 1.0)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn partial_search_saves_exactly_the_paper_fraction() {
        let n = 1e9;
        for &k in &[2.0, 5.0, 10.0] {
            let full = randomized_full_expected_queries_asymptotic(n);
            let partial = randomized_partial_expected_queries_asymptotic(n, k);
            assert_close(
                (full - partial) / full,
                classical_partial_relative_saving(k),
                1e-12,
            );
        }
    }

    #[test]
    fn lower_bound_equals_algorithm_cost() {
        // The randomized algorithm meets the Appendix-A bound exactly (in the
        // exact discrete form), i.e. it is optimal.
        for &(n, k) in &[(12.0, 3.0), (64.0, 4.0), (1024.0, 32.0)] {
            assert_close(
                randomized_partial_expected_queries(n, k),
                appendix_a_lower_bound(n, k),
                1e-9,
            );
        }
    }

    #[test]
    fn average_cost_is_increasing_in_stop_point() {
        let n = 100.0;
        let mut prev = 0.0;
        for s in 1..=100 {
            let cost = average_cost_for_stop_point(n, s as f64);
            assert!(cost > prev);
            prev = cost;
        }
        // S = N recovers the full-search expectation over a uniform target
        // when no inference is allowed: (N+1)/2.
        assert_close(average_cost_for_stop_point(n, n), (n + 1.0) / 2.0, 1e-12);
    }

    #[test]
    fn k_equals_one_degenerates_to_zero_cost_problem() {
        // With a single block there is nothing to learn; the bound is 0.
        assert_close(appendix_a_lower_bound(16.0, 1.0), 0.0, 1e-12);
        assert_close(randomized_partial_expected_queries(16.0, 1.0), 0.0, 1e-12);
    }

    #[test]
    fn deterministic_savings_are_about_n_over_k() {
        let n = 1e6;
        for &k in &[2.0, 4.0, 100.0] {
            let savings = deterministic_partial_savings(n, k);
            assert!((savings - n / k).abs() <= 1.0, "k = {k}");
        }
    }
}
