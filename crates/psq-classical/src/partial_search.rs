//! Classical partial search (Section 1.1).
//!
//! The problem: the address space is split into `K` equal blocks and only the
//! block containing the marked item is wanted.  The paper's classical
//! observations, reproduced here as runnable algorithms:
//!
//! * a *deterministic* zero-error algorithm can leave one block unprobed and
//!   infer the answer, for a worst case of `N(1 − 1/K)` queries;
//! * the *randomized* version (exclude a random block, probe the rest in
//!   random order) makes `N/2·(1 − 1/K²)` queries on average — a saving over
//!   full search that vanishes like `1/K²`;
//! * no zero-error randomized algorithm can do better (Appendix A; see
//!   [`crate::adversary`]).

use psq_sim::oracle::{Database, PartialSearchOutcome, Partition};
use rand::seq::SliceRandom;
use rand::Rng;

/// Deterministic partial search: probe every address outside the *last* block
/// in increasing order; stop as soon as the marked item is found, and if it
/// never is, report the unprobed block.
///
/// Zero error; worst case `N − N/K` queries.
pub fn deterministic_partial(db: &Database, partition: &Partition) -> PartialSearchOutcome {
    assert_eq!(
        db.size(),
        partition.size(),
        "database/partition size mismatch"
    );
    partial_with_excluded_block::<rand::rngs::ThreadRng>(
        db,
        partition,
        partition.blocks() - 1,
        None,
    )
}

/// Randomized partial search: exclude a uniformly random block and probe the
/// remaining addresses in a uniformly random order.
///
/// Zero error; expected queries `N/2·(1 − 1/K²)` (see
/// [`crate::analysis::randomized_partial_expected_queries`]).
pub fn randomized_partial<R: Rng + ?Sized>(
    db: &Database,
    partition: &Partition,
    rng: &mut R,
) -> PartialSearchOutcome {
    assert_eq!(
        db.size(),
        partition.size(),
        "database/partition size mismatch"
    );
    let excluded = rng.gen_range(0..partition.blocks());
    partial_with_excluded_block(db, partition, excluded, Some(rng))
}

/// Shared engine: probes every address outside `excluded` (in random order if
/// an `rng` is supplied, in increasing order otherwise) until the marked item
/// turns up; reports the excluded block if it never does.
fn partial_with_excluded_block<R: Rng + ?Sized>(
    db: &Database,
    partition: &Partition,
    excluded: u64,
    rng: Option<&mut R>,
) -> PartialSearchOutcome {
    let span = db.counter().span();
    let mut order: Vec<u64> = (0..db.size())
        .filter(|&x| partition.block_of(x) != excluded)
        .collect();
    if let Some(rng) = rng {
        order.shuffle(rng);
    }
    let true_block = partition.block_of(db.target());
    for &x in &order {
        if db.query(x) {
            return PartialSearchOutcome {
                reported_block: partition.block_of(x),
                true_block,
                queries: span.elapsed(),
            };
        }
    }
    // Every probed address was unmarked, so the target lies in the excluded
    // block; no further query is needed.
    PartialSearchOutcome {
        reported_block: excluded,
        true_block,
        queries: span.elapsed(),
    }
}

/// Full classical search implemented on top of repeated partial searches —
/// the classical analogue of the reduction in Section 4 of the paper.
///
/// At every level the address range is split into `k_per_level` blocks, the
/// target block is identified by [`deterministic_partial`] on the restricted
/// range, and the search recurses into that block until a single address
/// remains.  Used by tests to sanity-check the reduction's bookkeeping in a
/// setting where the arithmetic is elementary.
pub fn full_search_via_partial(db: &Database, k_per_level: u64) -> (u64, u64) {
    assert!(k_per_level >= 2, "need at least two blocks per level");
    let span = db.counter().span();
    let mut lo = 0u64;
    let mut len = db.size();
    while len > 1 {
        // Choose the largest divisor of `len` that is ≤ k_per_level so the
        // partition stays equal-sized at every level.
        let k = (2..=k_per_level.min(len))
            .rev()
            .find(|k| len.is_multiple_of(*k))
            .unwrap_or(len);
        let block_len = len / k;
        // Probe all blocks but the last within the current range.
        let mut found = None;
        'outer: for block in 0..k - 1 {
            for x in (lo + block * block_len)..(lo + (block + 1) * block_len) {
                if db.query(x) {
                    found = Some(block);
                    break 'outer;
                }
            }
        }
        let block = found.unwrap_or(k - 1);
        lo += block * block_len;
        len = block_len;
    }
    (lo, span.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_partial_is_always_correct() {
        let partition = Partition::new(24, 3);
        for target in 0..24u64 {
            let db = Database::new(24, target);
            let outcome = deterministic_partial(&db, &partition);
            assert!(outcome.is_correct());
            assert!(outcome.queries <= 16, "worst case is N(1 - 1/K) = 16");
        }
    }

    #[test]
    fn deterministic_partial_hits_the_worst_case_only_for_the_last_block() {
        let partition = Partition::new(24, 3);
        // Target in the excluded (last) block: all 16 probes fail.
        let db = Database::new(24, 20);
        assert_eq!(deterministic_partial(&db, &partition).queries, 16);
        // Target probed first: one query.
        let db = Database::new(24, 0);
        assert_eq!(deterministic_partial(&db, &partition).queries, 1);
    }

    #[test]
    fn randomized_partial_is_always_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        let partition = Partition::new(32, 4);
        for trial in 0..100u64 {
            let db = Database::new(32, trial % 32);
            let outcome = randomized_partial(&db, &partition, &mut rng);
            assert!(outcome.is_correct());
            assert!(outcome.queries <= 24);
        }
    }

    #[test]
    fn randomized_partial_average_matches_appendix_a() {
        let n = 64u64;
        let k = 4u64;
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(11);
        let mut stats = RunningStats::new();
        for trial in 0..6000u64 {
            let db = Database::new(n, trial % n);
            stats.push(randomized_partial(&db, &partition, &mut rng).queries as f64);
        }
        let expected = crate::analysis::randomized_partial_expected_queries(n as f64, k as f64);
        assert!(
            (stats.mean() - expected).abs() < 1.0,
            "mean {} vs expected {expected}",
            stats.mean()
        );
    }

    #[test]
    fn full_search_via_partial_finds_the_target() {
        for target in [0u64, 17, 40, 63] {
            let db = Database::new(64, target);
            let (found, queries) = full_search_via_partial(&db, 4);
            assert_eq!(found, target);
            assert!(queries <= 63);
        }
    }

    #[test]
    fn partial_search_beats_full_search_on_average_but_barely() {
        // The expected saving N/(2K²) is tiny compared with the per-run
        // standard deviation (~N/√12), so compare each Monte-Carlo mean with
        // its closed form instead of the two noisy means with each other.
        let n = 128u64;
        let k = 8u64;
        let partition = Partition::new(n, k);
        let mut rng = StdRng::seed_from_u64(2);
        let mut partial = RunningStats::new();
        let mut full = RunningStats::new();
        for trial in 0..4000u64 {
            let db = Database::new(n, trial % n);
            partial.push(randomized_partial(&db, &partition, &mut rng).queries as f64);
            let db = Database::new(n, trial % n);
            full.push(crate::full_search::random_scan(&db, &mut rng).queries as f64);
        }
        let partial_exact =
            crate::analysis::randomized_partial_expected_queries(n as f64, k as f64);
        let full_exact = crate::analysis::randomized_full_expected_queries(n as f64);
        assert!((partial.mean() - partial_exact).abs() < 3.0);
        assert!((full.mean() - full_exact).abs() < 3.0);
        // Partial search really is cheaper, but only by ~ N/(2K²) ≈ 1 query
        // out of ~64.
        assert!(partial_exact < full_exact);
        assert!(full_exact - partial_exact < 2.0);
    }
}
