//! The Appendix-A lower-bound argument, executable.
//!
//! Appendix A proves that no zero-error randomized algorithm for classical
//! partial search beats `N/2·(1 − 1/K²)` expected queries, by the standard
//! distributional (Yao) argument: fix the uniform distribution over targets
//! and show every *deterministic* zero-error algorithm pays at least that
//! much on average.
//!
//! The key structural fact is that a deterministic zero-error algorithm is
//! completely described by the probe sequence `ℓ1, ℓ2, …` it follows while
//! every answer is 0 (as the appendix notes), together with the only sound
//! stopping rule: stop when the target has been found or when every address
//! not yet probed lies in a single block.  This module makes that object a
//! value — [`ProbeOrder`] — so the bound can be *checked* against arbitrary
//! strategies rather than merely stated.

use psq_sim::oracle::Partition;
use rand::seq::SliceRandom;
use rand::Rng;

/// A deterministic zero-error partial-search strategy: the order in which it
/// would probe addresses if it never found the target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeOrder {
    order: Vec<u64>,
    partition: Partition,
}

/// The exact average behaviour of a [`ProbeOrder`] under a uniformly random
/// target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyCost {
    /// Number of probes the strategy makes before it is entitled to stop with
    /// every answer 0 (the `S` of the analysis).
    pub probes_before_stop: u64,
    /// Exact expected number of probes over a uniformly random target.
    pub average_queries: f64,
    /// Worst-case number of probes over all targets.
    pub worst_case_queries: u64,
}

impl ProbeOrder {
    /// Wraps an explicit probe order.
    ///
    /// # Panics
    /// Panics if the order is not a permutation of the address space.
    pub fn new(partition: Partition, order: Vec<u64>) -> Self {
        let n = partition.size();
        assert_eq!(
            order.len() as u64,
            n,
            "probe order must cover the whole address space"
        );
        let mut seen = vec![false; n as usize];
        for &x in &order {
            assert!(x < n, "probe address {x} out of range");
            assert!(!seen[x as usize], "probe address {x} repeated");
            seen[x as usize] = true;
        }
        Self { order, partition }
    }

    /// The canonical optimal strategy: probe blocks `0, …, K−2` in address
    /// order and leave the last block unprobed (the strategy implemented by
    /// [`crate::partial_search::deterministic_partial`]).
    pub fn block_by_block(partition: Partition) -> Self {
        let order = (0..partition.size())
            .filter(|&x| partition.block_of(x) != partition.blocks() - 1)
            .chain(
                (0..partition.size()).filter(|&x| partition.block_of(x) == partition.blocks() - 1),
            )
            .collect();
        Self::new(partition, order)
    }

    /// A uniformly random probe order (used by the tests to search for
    /// counterexamples to the bound).
    pub fn random<R: Rng + ?Sized>(partition: Partition, rng: &mut R) -> Self {
        let mut order: Vec<u64> = (0..partition.size()).collect();
        order.shuffle(rng);
        Self::new(partition, order)
    }

    /// A deliberately wasteful strategy that interleaves the blocks, so the
    /// unprobed remainder spans several blocks until the very end.
    pub fn round_robin(partition: Partition) -> Self {
        let k = partition.blocks();
        let b = partition.block_size();
        let mut order = Vec::with_capacity(partition.size() as usize);
        for offset in 0..b {
            for block in 0..k {
                order.push(block * b + offset);
            }
        }
        Self::new(partition, order)
    }

    /// The probe order.
    pub fn order(&self) -> &[u64] {
        &self.order
    }

    /// The partition this strategy answers questions about.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The number of probes after which the set of unprobed addresses first
    /// fits inside a single block (the earliest point at which a zero-error
    /// algorithm may stop without having found the target).
    pub fn probes_before_stop(&self) -> u64 {
        let k = self.partition.blocks();
        let mut remaining_per_block = vec![self.partition.block_size(); k as usize];
        let mut blocks_with_remaining = k;
        for (i, &x) in self.order.iter().enumerate() {
            if blocks_with_remaining <= 1 {
                return i as u64;
            }
            let b = self.partition.block_of(x) as usize;
            remaining_per_block[b] -= 1;
            if remaining_per_block[b] == 0 {
                blocks_with_remaining -= 1;
            }
        }
        // The order is a permutation, so by the time it is exhausted at most
        // one block can still have unprobed addresses.
        self.partition.size()
    }

    /// Exact average and worst-case cost over a uniformly random target,
    /// assuming the optimal stopping rule.
    pub fn cost(&self) -> StrategyCost {
        let n = self.partition.size();
        let s = self.probes_before_stop();
        // A target probed at position i (1-based, i ≤ s) costs i queries; any
        // other target costs s queries (all answers 0, then stop).
        let sum_found: u64 = (1..=s).sum();
        let average = (sum_found as f64 + (n - s) as f64 * s as f64) / n as f64;
        StrategyCost {
            probes_before_stop: s,
            average_queries: average,
            worst_case_queries: s,
        }
    }

    /// Runs the strategy against a concrete target and returns
    /// `(reported_block, queries)`; used to check the cost model against an
    /// actual execution.
    pub fn execute(&self, target: u64) -> (u64, u64) {
        let s = self.probes_before_stop();
        for (i, &x) in self.order.iter().enumerate().take(s as usize) {
            if x == target {
                return (self.partition.block_of(x), (i + 1) as u64);
            }
        }
        // All s probes failed: the unprobed remainder lies in one block.
        let reported = self
            .order
            .iter()
            .skip(s as usize)
            .map(|&x| self.partition.block_of(x))
            .next()
            .expect("a zero-error strategy always leaves at least one address unprobed");
        (reported, s)
    }
}

/// The distributional lower bound itself: the minimum average cost any
/// deterministic zero-error strategy can achieve, which is the cost of any
/// strategy with the minimal stop point `S = N − N/K`.
pub fn minimum_average_cost(partition: &Partition) -> f64 {
    let n = partition.size() as f64;
    let k = partition.blocks() as f64;
    crate::analysis::appendix_a_lower_bound(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_by_block_achieves_the_bound_exactly() {
        for &(n, k) in &[(12u64, 3u64), (24, 4), (64, 8), (60, 5)] {
            let p = Partition::new(n, k);
            let strategy = ProbeOrder::block_by_block(p);
            let cost = strategy.cost();
            assert_eq!(cost.probes_before_stop, n - n / k);
            assert_close(cost.average_queries, minimum_average_cost(&p), 1e-12);
        }
    }

    #[test]
    fn no_random_strategy_beats_the_bound() {
        let mut rng = StdRng::seed_from_u64(41);
        for &(n, k) in &[(12u64, 3u64), (32, 4), (40, 8)] {
            let p = Partition::new(n, k);
            let bound = minimum_average_cost(&p);
            for _ in 0..200 {
                let strategy = ProbeOrder::random(p, &mut rng);
                assert!(
                    strategy.cost().average_queries >= bound - 1e-12,
                    "a random strategy beat the Appendix-A bound"
                );
            }
        }
    }

    #[test]
    fn round_robin_is_strictly_worse_than_block_by_block() {
        let p = Partition::new(48, 4);
        let good = ProbeOrder::block_by_block(p).cost();
        let bad = ProbeOrder::round_robin(p).cost();
        assert!(bad.average_queries > good.average_queries);
        // Interleaving forces probing until only one address of the last
        // block remains uncovered... in fact until K−1 addresses remain in
        // distinct blocks is impossible; it stops when N − 1 of one block's
        // addresses would remain, i.e. very late.
        assert!(bad.probes_before_stop > good.probes_before_stop);
    }

    #[test]
    fn execution_matches_the_cost_model() {
        let p = Partition::new(24, 3);
        let strategy = ProbeOrder::block_by_block(p);
        let s = strategy.probes_before_stop();
        let mut total = 0u64;
        for target in 0..24u64 {
            let (block, queries) = strategy.execute(target);
            assert_eq!(block, p.block_of(target), "strategy must be zero-error");
            assert!(queries <= s);
            total += queries;
        }
        assert_close(total as f64 / 24.0, strategy.cost().average_queries, 1e-12);
    }

    #[test]
    fn random_strategies_are_also_zero_error() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Partition::new(20, 4);
        for _ in 0..50 {
            let strategy = ProbeOrder::random(p, &mut rng);
            for target in 0..20u64 {
                let (block, _) = strategy.execute(target);
                assert_eq!(block, p.block_of(target));
            }
        }
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_probe_addresses_are_rejected() {
        let p = Partition::new(4, 2);
        ProbeOrder::new(p, vec![0, 1, 1, 3]);
    }

    #[test]
    fn probes_before_stop_for_round_robin_is_nearly_n() {
        // Round-robin leaves every block partially unprobed until the final
        // sweep, so it can stop only K−1 probes before the end.
        let p = Partition::new(40, 4);
        let s = ProbeOrder::round_robin(p).probes_before_stop();
        assert_eq!(s, 40 - 4 + 3);
    }
}
