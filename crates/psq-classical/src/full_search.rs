//! Classical full database search.
//!
//! Section 1.1 of the paper states the classical facts the quantum results
//! are measured against: with a single marked item among `N`, a randomized
//! classical algorithm that makes no errors needs `N/2` queries on average to
//! locate it exactly, and this is tight.  These runners execute against the
//! same instrumented [`Database`] as the quantum algorithms, so the query
//! accounting is directly comparable.

use psq_sim::oracle::{Database, FullSearchOutcome};
use rand::seq::SliceRandom;
use rand::Rng;

/// Deterministic linear scan: probe addresses `0, 1, 2, …` until the marked
/// item is found.
///
/// When the first `N − 1` probes have all failed the last address is inferred
/// without a query (the algorithm still makes no errors), so the worst case
/// is `N − 1` queries.
pub fn deterministic_scan(db: &Database) -> FullSearchOutcome {
    let span = db.counter().span();
    let n = db.size();
    for x in 0..n {
        if x == n - 1 {
            // All other addresses are unmarked, so the last one must be it.
            return FullSearchOutcome {
                reported_target: x,
                true_target: db.target(),
                queries: span.elapsed(),
            };
        }
        if db.query(x) {
            return FullSearchOutcome {
                reported_target: x,
                true_target: db.target(),
                queries: span.elapsed(),
            };
        }
    }
    unreachable!("the loop always returns before exhausting the address space");
}

/// Randomized scan: probe the addresses in a uniformly random order until the
/// marked item is found (inferring the final address for free, as above).
///
/// Expected queries over a worst-case target: [`expected_queries_random_scan`].
pub fn random_scan<R: Rng + ?Sized>(db: &Database, rng: &mut R) -> FullSearchOutcome {
    let span = db.counter().span();
    let n = db.size();
    let mut order: Vec<u64> = (0..n).collect();
    order.shuffle(rng);
    for (probed, &x) in order.iter().enumerate() {
        if probed as u64 == n - 1 {
            return FullSearchOutcome {
                reported_target: x,
                true_target: db.target(),
                queries: span.elapsed(),
            };
        }
        if db.query(x) {
            return FullSearchOutcome {
                reported_target: x,
                true_target: db.target(),
                queries: span.elapsed(),
            };
        }
    }
    unreachable!("the loop always returns before exhausting the address space");
}

/// Exact expected query count of [`random_scan`] for any fixed target:
/// `((N−1)(N+2)) / (2N)`.
///
/// The target lands at a uniformly random position `i ∈ {1, …, N}` of the
/// probe order and costs `min(i, N−1)` queries, so the expectation is
/// `(Σ_{i=1}^{N−1} i + (N−1)) / N`.
pub fn expected_queries_random_scan(n: f64) -> f64 {
    assert!(n >= 1.0);
    ((n - 1.0) * (n + 2.0)) / (2.0 * n)
}

/// The textbook asymptotic statement of the same quantity: `N/2`.
pub fn expected_queries_asymptotic(n: f64) -> f64 {
    n / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use psq_math::approx::assert_close;
    use psq_math::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_scan_is_always_correct() {
        for target in 0..16u64 {
            let db = Database::new(16, target);
            let outcome = deterministic_scan(&db);
            assert!(outcome.is_correct());
            // Target at address t costs t + 1 probes, except the last address
            // which is inferred after the 15 preceding probes all fail.
            assert_eq!(outcome.queries, (target + 1).min(15));
        }
    }

    #[test]
    fn random_scan_is_always_correct_and_never_exceeds_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..50u64 {
            let db = Database::new(40, trial % 40);
            let outcome = random_scan(&db, &mut rng);
            assert!(outcome.is_correct());
            assert!(outcome.queries <= 39);
        }
    }

    #[test]
    fn random_scan_average_matches_closed_form() {
        let n = 64u64;
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = RunningStats::new();
        for trial in 0..4000u64 {
            let db = Database::new(n, trial % n);
            stats.push(random_scan(&db, &mut rng).queries as f64);
        }
        let expected = expected_queries_random_scan(n as f64);
        // 4000 trials of a distribution with std-dev ≈ N/√12 ≈ 18.5.
        assert!(
            (stats.mean() - expected).abs() < 1.5,
            "mean {} vs {expected}",
            stats.mean()
        );
    }

    #[test]
    fn closed_form_tends_to_n_over_2() {
        assert_close(
            expected_queries_random_scan(1e6) / expected_queries_asymptotic(1e6),
            1.0,
            1e-5,
        );
        // Small-N exactness: N = 2 costs exactly 1 query in every case? No —
        // with probability 1/2 the first probe hits the target (1 query) and
        // with probability 1/2 it misses and the answer is inferred (1 query).
        assert_close(expected_queries_random_scan(2.0), 1.0, 1e-12);
    }
}
