/root/repo/target/release/deps/figure5-4d05f39b3dbc8391.d: crates/psq-bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-4d05f39b3dbc8391: crates/psq-bench/src/bin/figure5.rs

crates/psq-bench/src/bin/figure5.rs:
