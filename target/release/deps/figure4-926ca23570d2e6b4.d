/root/repo/target/release/deps/figure4-926ca23570d2e6b4.d: crates/psq-bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-926ca23570d2e6b4: crates/psq-bench/src/bin/figure4.rs

crates/psq-bench/src/bin/figure4.rs:
