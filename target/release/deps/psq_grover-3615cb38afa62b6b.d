/root/repo/target/release/deps/psq_grover-3615cb38afa62b6b.d: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

/root/repo/target/release/deps/libpsq_grover-3615cb38afa62b6b.rlib: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

/root/repo/target/release/deps/libpsq_grover-3615cb38afa62b6b.rmeta: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

crates/psq-grover/src/lib.rs:
crates/psq-grover/src/amplitude_amplification.rs:
crates/psq-grover/src/exact.rs:
crates/psq-grover/src/iteration.rs:
crates/psq-grover/src/standard.rs:
crates/psq-grover/src/theory.rs:
