/root/repo/target/release/deps/report-a57533bbec843c9e.d: crates/psq-bench/src/bin/report.rs

/root/repo/target/release/deps/report-a57533bbec843c9e: crates/psq-bench/src/bin/report.rs

crates/psq-bench/src/bin/report.rs:
