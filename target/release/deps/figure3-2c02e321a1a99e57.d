/root/repo/target/release/deps/figure3-2c02e321a1a99e57.d: crates/psq-bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-2c02e321a1a99e57: crates/psq-bench/src/bin/figure3.rs

crates/psq-bench/src/bin/figure3.rs:
