/root/repo/target/release/deps/serde-c03748fe5041b0f0.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c03748fe5041b0f0.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c03748fe5041b0f0.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
