/root/repo/target/release/deps/psq_engine-9ff70bb78eaf178c.d: crates/psq-engine/src/bin/psq_engine.rs

/root/repo/target/release/deps/psq_engine-9ff70bb78eaf178c: crates/psq-engine/src/bin/psq_engine.rs

crates/psq-engine/src/bin/psq_engine.rs:
