/root/repo/target/release/deps/partial_quantum_search-08d09267ab8afef5.d: src/lib.rs

/root/repo/target/release/deps/libpartial_quantum_search-08d09267ab8afef5.rlib: src/lib.rs

/root/repo/target/release/deps/libpartial_quantum_search-08d09267ab8afef5.rmeta: src/lib.rs

src/lib.rs:
