/root/repo/target/release/deps/psq_bounds-0b7bb7c5731af2e7.d: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

/root/repo/target/release/deps/libpsq_bounds-0b7bb7c5731af2e7.rlib: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

/root/repo/target/release/deps/libpsq_bounds-0b7bb7c5731af2e7.rmeta: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

crates/psq-bounds/src/lib.rs:
crates/psq-bounds/src/hybrid.rs:
crates/psq-bounds/src/lemmas.rs:
crates/psq-bounds/src/theorem2.rs:
crates/psq-bounds/src/zalka.rs:
