/root/repo/target/release/deps/theorem2-1899e4b227035226.d: crates/psq-bench/src/bin/theorem2.rs

/root/repo/target/release/deps/theorem2-1899e4b227035226: crates/psq-bench/src/bin/theorem2.rs

crates/psq-bench/src/bin/theorem2.rs:
