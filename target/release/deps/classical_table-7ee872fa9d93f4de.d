/root/repo/target/release/deps/classical_table-7ee872fa9d93f4de.d: crates/psq-bench/src/bin/classical_table.rs

/root/repo/target/release/deps/classical_table-7ee872fa9d93f4de: crates/psq-bench/src/bin/classical_table.rs

crates/psq-bench/src/bin/classical_table.rs:
