/root/repo/target/release/deps/psq_sim-749b2d92f31eac8f.d: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

/root/repo/target/release/deps/libpsq_sim-749b2d92f31eac8f.rlib: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

/root/repo/target/release/deps/libpsq_sim-749b2d92f31eac8f.rmeta: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

crates/psq-sim/src/lib.rs:
crates/psq-sim/src/circuit.rs:
crates/psq-sim/src/gates.rs:
crates/psq-sim/src/measure.rs:
crates/psq-sim/src/oracle.rs:
crates/psq-sim/src/query_counter.rs:
crates/psq-sim/src/reduced.rs:
crates/psq-sim/src/statevector.rs:
crates/psq-sim/src/trace.rs:
