/root/repo/target/release/deps/psq_bench-f7de14dfabd21ad9.d: crates/psq-bench/src/lib.rs

/root/repo/target/release/deps/libpsq_bench-f7de14dfabd21ad9.rlib: crates/psq-bench/src/lib.rs

/root/repo/target/release/deps/libpsq_bench-f7de14dfabd21ad9.rmeta: crates/psq-bench/src/lib.rs

crates/psq-bench/src/lib.rs:
