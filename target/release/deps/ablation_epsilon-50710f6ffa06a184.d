/root/repo/target/release/deps/ablation_epsilon-50710f6ffa06a184.d: crates/psq-bench/src/bin/ablation_epsilon.rs

/root/repo/target/release/deps/ablation_epsilon-50710f6ffa06a184: crates/psq-bench/src/bin/ablation_epsilon.rs

crates/psq-bench/src/bin/ablation_epsilon.rs:
