/root/repo/target/release/deps/zalka_bound-93fd949266b4ae95.d: crates/psq-bench/src/bin/zalka_bound.rs

/root/repo/target/release/deps/zalka_bound-93fd949266b4ae95: crates/psq-bench/src/bin/zalka_bound.rs

crates/psq-bench/src/bin/zalka_bound.rs:
