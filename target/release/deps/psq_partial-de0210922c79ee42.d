/root/repo/target/release/deps/psq_partial-de0210922c79ee42.d: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

/root/repo/target/release/deps/libpsq_partial-de0210922c79ee42.rlib: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

/root/repo/target/release/deps/libpsq_partial-de0210922c79ee42.rmeta: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

crates/psq-partial/src/lib.rs:
crates/psq-partial/src/algorithm.rs:
crates/psq-partial/src/baseline.rs:
crates/psq-partial/src/example12.rs:
crates/psq-partial/src/model.rs:
crates/psq-partial/src/optimizer.rs:
crates/psq-partial/src/plan.rs:
crates/psq-partial/src/recursive.rs:
crates/psq-partial/src/robustness.rs:
