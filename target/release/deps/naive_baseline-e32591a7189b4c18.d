/root/repo/target/release/deps/naive_baseline-e32591a7189b4c18.d: crates/psq-bench/src/bin/naive_baseline.rs

/root/repo/target/release/deps/naive_baseline-e32591a7189b4c18: crates/psq-bench/src/bin/naive_baseline.rs

crates/psq-bench/src/bin/naive_baseline.rs:
