/root/repo/target/release/deps/recursive_reduction-235b185cada4bd56.d: crates/psq-bench/src/bin/recursive_reduction.rs

/root/repo/target/release/deps/recursive_reduction-235b185cada4bd56: crates/psq-bench/src/bin/recursive_reduction.rs

crates/psq-bench/src/bin/recursive_reduction.rs:
