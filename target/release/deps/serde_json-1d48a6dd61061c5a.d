/root/repo/target/release/deps/serde_json-1d48a6dd61061c5a.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1d48a6dd61061c5a.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1d48a6dd61061c5a.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
