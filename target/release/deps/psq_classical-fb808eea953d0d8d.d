/root/repo/target/release/deps/psq_classical-fb808eea953d0d8d.d: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

/root/repo/target/release/deps/libpsq_classical-fb808eea953d0d8d.rlib: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

/root/repo/target/release/deps/libpsq_classical-fb808eea953d0d8d.rmeta: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

crates/psq-classical/src/lib.rs:
crates/psq-classical/src/adversary.rs:
crates/psq-classical/src/analysis.rs:
crates/psq-classical/src/full_search.rs:
crates/psq-classical/src/partial_search.rs:
