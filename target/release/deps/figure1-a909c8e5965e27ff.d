/root/repo/target/release/deps/figure1-a909c8e5965e27ff.d: crates/psq-bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-a909c8e5965e27ff: crates/psq-bench/src/bin/figure1.rs

crates/psq-bench/src/bin/figure1.rs:
