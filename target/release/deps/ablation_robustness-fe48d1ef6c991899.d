/root/repo/target/release/deps/ablation_robustness-fe48d1ef6c991899.d: crates/psq-bench/src/bin/ablation_robustness.rs

/root/repo/target/release/deps/ablation_robustness-fe48d1ef6c991899: crates/psq-bench/src/bin/ablation_robustness.rs

crates/psq-bench/src/bin/ablation_robustness.rs:
