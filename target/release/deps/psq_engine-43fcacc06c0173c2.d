/root/repo/target/release/deps/psq_engine-43fcacc06c0173c2.d: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

/root/repo/target/release/deps/libpsq_engine-43fcacc06c0173c2.rlib: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

/root/repo/target/release/deps/libpsq_engine-43fcacc06c0173c2.rmeta: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

crates/psq-engine/src/lib.rs:
crates/psq-engine/src/backends.rs:
crates/psq-engine/src/executor.rs:
crates/psq-engine/src/metrics.rs:
crates/psq-engine/src/planner.rs:
crates/psq-engine/src/spec.rs:
