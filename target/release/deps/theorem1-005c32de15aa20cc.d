/root/repo/target/release/deps/theorem1-005c32de15aa20cc.d: crates/psq-bench/src/bin/theorem1.rs

/root/repo/target/release/deps/theorem1-005c32de15aa20cc: crates/psq-bench/src/bin/theorem1.rs

crates/psq-bench/src/bin/theorem1.rs:
