/root/repo/target/release/deps/psq_parallel-92e440e02f6bdf7a.d: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

/root/repo/target/release/deps/libpsq_parallel-92e440e02f6bdf7a.rlib: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

/root/repo/target/release/deps/libpsq_parallel-92e440e02f6bdf7a.rmeta: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

crates/psq-parallel/src/lib.rs:
crates/psq-parallel/src/chunks.rs:
crates/psq-parallel/src/pool.rs:
crates/psq-parallel/src/scope.rs:
