/root/repo/target/release/deps/engine_throughput-329f7cbd27db897e.d: crates/psq-bench/benches/engine_throughput.rs

/root/repo/target/release/deps/engine_throughput-329f7cbd27db897e: crates/psq-bench/benches/engine_throughput.rs

crates/psq-bench/benches/engine_throughput.rs:
