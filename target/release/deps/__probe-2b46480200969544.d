/root/repo/target/release/deps/__probe-2b46480200969544.d: crates/psq-bench/src/bin/__probe.rs

/root/repo/target/release/deps/__probe-2b46480200969544: crates/psq-bench/src/bin/__probe.rs

crates/psq-bench/src/bin/__probe.rs:
