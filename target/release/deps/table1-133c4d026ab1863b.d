/root/repo/target/release/deps/table1-133c4d026ab1863b.d: crates/psq-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-133c4d026ab1863b: crates/psq-bench/src/bin/table1.rs

crates/psq-bench/src/bin/table1.rs:
