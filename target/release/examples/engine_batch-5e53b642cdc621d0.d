/root/repo/target/release/examples/engine_batch-5e53b642cdc621d0.d: examples/engine_batch.rs

/root/repo/target/release/examples/engine_batch-5e53b642cdc621d0: examples/engine_batch.rs

examples/engine_batch.rs:
