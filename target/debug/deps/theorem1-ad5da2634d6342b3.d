/root/repo/target/debug/deps/theorem1-ad5da2634d6342b3.d: crates/psq-bench/src/bin/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-ad5da2634d6342b3.rmeta: crates/psq-bench/src/bin/theorem1.rs Cargo.toml

crates/psq-bench/src/bin/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
