/root/repo/target/debug/deps/recursive_reduction-a65913655a17ec27.d: crates/psq-bench/src/bin/recursive_reduction.rs

/root/repo/target/debug/deps/recursive_reduction-a65913655a17ec27: crates/psq-bench/src/bin/recursive_reduction.rs

crates/psq-bench/src/bin/recursive_reduction.rs:
