/root/repo/target/debug/deps/zalka_accounting-599e15ae938ca2d1.d: crates/psq-bench/benches/zalka_accounting.rs Cargo.toml

/root/repo/target/debug/deps/libzalka_accounting-599e15ae938ca2d1.rmeta: crates/psq-bench/benches/zalka_accounting.rs Cargo.toml

crates/psq-bench/benches/zalka_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
