/root/repo/target/debug/deps/psq_bounds-6c38803f5184565c.d: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

/root/repo/target/debug/deps/psq_bounds-6c38803f5184565c: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

crates/psq-bounds/src/lib.rs:
crates/psq-bounds/src/hybrid.rs:
crates/psq-bounds/src/lemmas.rs:
crates/psq-bounds/src/theorem2.rs:
crates/psq-bounds/src/zalka.rs:
