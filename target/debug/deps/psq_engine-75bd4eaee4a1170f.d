/root/repo/target/debug/deps/psq_engine-75bd4eaee4a1170f.d: crates/psq-engine/src/bin/psq_engine.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_engine-75bd4eaee4a1170f.rmeta: crates/psq-engine/src/bin/psq_engine.rs Cargo.toml

crates/psq-engine/src/bin/psq_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
