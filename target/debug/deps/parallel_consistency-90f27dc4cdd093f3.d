/root/repo/target/debug/deps/parallel_consistency-90f27dc4cdd093f3.d: crates/psq-parallel/tests/parallel_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_consistency-90f27dc4cdd093f3.rmeta: crates/psq-parallel/tests/parallel_consistency.rs Cargo.toml

crates/psq-parallel/tests/parallel_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
