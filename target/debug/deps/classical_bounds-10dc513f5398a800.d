/root/repo/target/debug/deps/classical_bounds-10dc513f5398a800.d: crates/psq-classical/tests/classical_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libclassical_bounds-10dc513f5398a800.rmeta: crates/psq-classical/tests/classical_bounds.rs Cargo.toml

crates/psq-classical/tests/classical_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
