/root/repo/target/debug/deps/partial_quantum_search-67c6bdc1f68b0a04.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpartial_quantum_search-67c6bdc1f68b0a04.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
