/root/repo/target/debug/deps/report-73472575c2cbab6c.d: crates/psq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-73472575c2cbab6c.rmeta: crates/psq-bench/src/bin/report.rs Cargo.toml

crates/psq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
