/root/repo/target/debug/deps/table1_coefficients-e683bf328688fea2.d: crates/psq-bench/benches/table1_coefficients.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_coefficients-e683bf328688fea2.rmeta: crates/psq-bench/benches/table1_coefficients.rs Cargo.toml

crates/psq-bench/benches/table1_coefficients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
