/root/repo/target/debug/deps/figure4-7f2389438aa89ffb.d: crates/psq-bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-7f2389438aa89ffb.rmeta: crates/psq-bench/src/bin/figure4.rs Cargo.toml

crates/psq-bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
