/root/repo/target/debug/deps/recursive_reduction-8e935a2e24cae151.d: crates/psq-bench/src/bin/recursive_reduction.rs Cargo.toml

/root/repo/target/debug/deps/librecursive_reduction-8e935a2e24cae151.rmeta: crates/psq-bench/src/bin/recursive_reduction.rs Cargo.toml

crates/psq-bench/src/bin/recursive_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
