/root/repo/target/debug/deps/psq_engine-47df8c5acbe7a650.d: crates/psq-engine/src/bin/psq_engine.rs

/root/repo/target/debug/deps/psq_engine-47df8c5acbe7a650: crates/psq-engine/src/bin/psq_engine.rs

crates/psq-engine/src/bin/psq_engine.rs:
