/root/repo/target/debug/deps/psq_engine-35be2a6d266fcafd.d: crates/psq-engine/src/bin/psq_engine.rs

/root/repo/target/debug/deps/psq_engine-35be2a6d266fcafd: crates/psq-engine/src/bin/psq_engine.rs

crates/psq-engine/src/bin/psq_engine.rs:
