/root/repo/target/debug/deps/properties-66a8438a113cf1f4.d: crates/psq-math/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-66a8438a113cf1f4.rmeta: crates/psq-math/tests/properties.rs Cargo.toml

crates/psq-math/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
