/root/repo/target/debug/deps/psq_classical-23750d891910c644.d: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_classical-23750d891910c644.rmeta: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs Cargo.toml

crates/psq-classical/src/lib.rs:
crates/psq-classical/src/adversary.rs:
crates/psq-classical/src/analysis.rs:
crates/psq-classical/src/full_search.rs:
crates/psq-classical/src/partial_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
