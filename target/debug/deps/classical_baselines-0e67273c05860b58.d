/root/repo/target/debug/deps/classical_baselines-0e67273c05860b58.d: crates/psq-bench/benches/classical_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libclassical_baselines-0e67273c05860b58.rmeta: crates/psq-bench/benches/classical_baselines.rs Cargo.toml

crates/psq-bench/benches/classical_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
