/root/repo/target/debug/deps/engine_serving-ddc74e05fe6cc18c.d: tests/engine_serving.rs

/root/repo/target/debug/deps/engine_serving-ddc74e05fe6cc18c: tests/engine_serving.rs

tests/engine_serving.rs:
