/root/repo/target/debug/deps/grover_end_to_end-b8ec98af057c9229.d: crates/psq-grover/tests/grover_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libgrover_end_to_end-b8ec98af057c9229.rmeta: crates/psq-grover/tests/grover_end_to_end.rs Cargo.toml

crates/psq-grover/tests/grover_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
