/root/repo/target/debug/deps/parallel_consistency-c8dd8efc7096e534.d: crates/psq-parallel/tests/parallel_consistency.rs

/root/repo/target/debug/deps/parallel_consistency-c8dd8efc7096e534: crates/psq-parallel/tests/parallel_consistency.rs

crates/psq-parallel/tests/parallel_consistency.rs:
