/root/repo/target/debug/deps/ablation_robustness-42471306bd45bb28.d: crates/psq-bench/src/bin/ablation_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_robustness-42471306bd45bb28.rmeta: crates/psq-bench/src/bin/ablation_robustness.rs Cargo.toml

crates/psq-bench/src/bin/ablation_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
