/root/repo/target/debug/deps/psq_bench-09f4fbcda2b3ac33.d: crates/psq-bench/src/lib.rs

/root/repo/target/debug/deps/psq_bench-09f4fbcda2b3ac33: crates/psq-bench/src/lib.rs

crates/psq-bench/src/lib.rs:
