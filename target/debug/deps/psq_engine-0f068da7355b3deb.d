/root/repo/target/debug/deps/psq_engine-0f068da7355b3deb.d: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_engine-0f068da7355b3deb.rmeta: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs Cargo.toml

crates/psq-engine/src/lib.rs:
crates/psq-engine/src/backends.rs:
crates/psq-engine/src/executor.rs:
crates/psq-engine/src/metrics.rs:
crates/psq-engine/src/planner.rs:
crates/psq-engine/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
