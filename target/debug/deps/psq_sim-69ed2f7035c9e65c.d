/root/repo/target/debug/deps/psq_sim-69ed2f7035c9e65c.d: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_sim-69ed2f7035c9e65c.rmeta: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs Cargo.toml

crates/psq-sim/src/lib.rs:
crates/psq-sim/src/circuit.rs:
crates/psq-sim/src/gates.rs:
crates/psq-sim/src/measure.rs:
crates/psq-sim/src/oracle.rs:
crates/psq-sim/src/query_counter.rs:
crates/psq-sim/src/reduced.rs:
crates/psq-sim/src/statevector.rs:
crates/psq-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
