/root/repo/target/debug/deps/recursive_reduction-50d8307aa4c2c02d.d: crates/psq-bench/src/bin/recursive_reduction.rs Cargo.toml

/root/repo/target/debug/deps/librecursive_reduction-50d8307aa4c2c02d.rmeta: crates/psq-bench/src/bin/recursive_reduction.rs Cargo.toml

crates/psq-bench/src/bin/recursive_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
