/root/repo/target/debug/deps/figure1-e9a5b01051bb5f4d.d: crates/psq-bench/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-e9a5b01051bb5f4d.rmeta: crates/psq-bench/src/bin/figure1.rs Cargo.toml

crates/psq-bench/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
