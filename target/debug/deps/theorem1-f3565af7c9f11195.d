/root/repo/target/debug/deps/theorem1-f3565af7c9f11195.d: crates/psq-bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-f3565af7c9f11195: crates/psq-bench/src/bin/theorem1.rs

crates/psq-bench/src/bin/theorem1.rs:
