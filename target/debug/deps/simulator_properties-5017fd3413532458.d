/root/repo/target/debug/deps/simulator_properties-5017fd3413532458.d: crates/psq-sim/tests/simulator_properties.rs

/root/repo/target/debug/deps/simulator_properties-5017fd3413532458: crates/psq-sim/tests/simulator_properties.rs

crates/psq-sim/tests/simulator_properties.rs:
