/root/repo/target/debug/deps/partial_vs_full-de71aa4f3e63bab2.d: crates/psq-bench/benches/partial_vs_full.rs Cargo.toml

/root/repo/target/debug/deps/libpartial_vs_full-de71aa4f3e63bab2.rmeta: crates/psq-bench/benches/partial_vs_full.rs Cargo.toml

crates/psq-bench/benches/partial_vs_full.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
