/root/repo/target/debug/deps/classical_table-919be168838570f7.d: crates/psq-bench/src/bin/classical_table.rs Cargo.toml

/root/repo/target/debug/deps/libclassical_table-919be168838570f7.rmeta: crates/psq-bench/src/bin/classical_table.rs Cargo.toml

crates/psq-bench/src/bin/classical_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
