/root/repo/target/debug/deps/paper_claims-4bea6923890d4d16.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-4bea6923890d4d16: tests/paper_claims.rs

tests/paper_claims.rs:
