/root/repo/target/debug/deps/ablation_robustness-579ac2a6c3254366.d: crates/psq-bench/src/bin/ablation_robustness.rs

/root/repo/target/debug/deps/ablation_robustness-579ac2a6c3254366: crates/psq-bench/src/bin/ablation_robustness.rs

crates/psq-bench/src/bin/ablation_robustness.rs:
