/root/repo/target/debug/deps/psq_parallel-1e80fc37ae82dcbb.d: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_parallel-1e80fc37ae82dcbb.rmeta: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs Cargo.toml

crates/psq-parallel/src/lib.rs:
crates/psq-parallel/src/chunks.rs:
crates/psq-parallel/src/pool.rs:
crates/psq-parallel/src/scope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
