/root/repo/target/debug/deps/zalka_bound-411f74da03d76cb8.d: crates/psq-bench/src/bin/zalka_bound.rs Cargo.toml

/root/repo/target/debug/deps/libzalka_bound-411f74da03d76cb8.rmeta: crates/psq-bench/src/bin/zalka_bound.rs Cargo.toml

crates/psq-bench/src/bin/zalka_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
