/root/repo/target/debug/deps/psq_sim-e82a6cfa6beb27e9.d: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

/root/repo/target/debug/deps/libpsq_sim-e82a6cfa6beb27e9.rlib: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

/root/repo/target/debug/deps/libpsq_sim-e82a6cfa6beb27e9.rmeta: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

crates/psq-sim/src/lib.rs:
crates/psq-sim/src/circuit.rs:
crates/psq-sim/src/gates.rs:
crates/psq-sim/src/measure.rs:
crates/psq-sim/src/oracle.rs:
crates/psq-sim/src/query_counter.rs:
crates/psq-sim/src/reduced.rs:
crates/psq-sim/src/statevector.rs:
crates/psq-sim/src/trace.rs:
