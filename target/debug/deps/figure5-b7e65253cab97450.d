/root/repo/target/debug/deps/figure5-b7e65253cab97450.d: crates/psq-bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-b7e65253cab97450.rmeta: crates/psq-bench/src/bin/figure5.rs Cargo.toml

crates/psq-bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
