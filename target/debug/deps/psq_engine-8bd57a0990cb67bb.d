/root/repo/target/debug/deps/psq_engine-8bd57a0990cb67bb.d: crates/psq-engine/src/bin/psq_engine.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_engine-8bd57a0990cb67bb.rmeta: crates/psq-engine/src/bin/psq_engine.rs Cargo.toml

crates/psq-engine/src/bin/psq_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
