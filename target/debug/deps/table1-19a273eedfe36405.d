/root/repo/target/debug/deps/table1-19a273eedfe36405.d: crates/psq-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-19a273eedfe36405.rmeta: crates/psq-bench/src/bin/table1.rs Cargo.toml

crates/psq-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
