/root/repo/target/debug/deps/ablation_epsilon-3c9b1641cc68fa6d.d: crates/psq-bench/src/bin/ablation_epsilon.rs

/root/repo/target/debug/deps/ablation_epsilon-3c9b1641cc68fa6d: crates/psq-bench/src/bin/ablation_epsilon.rs

crates/psq-bench/src/bin/ablation_epsilon.rs:
