/root/repo/target/debug/deps/report-0fcfee4d521bb7b0.d: crates/psq-bench/src/bin/report.rs

/root/repo/target/debug/deps/report-0fcfee4d521bb7b0: crates/psq-bench/src/bin/report.rs

crates/psq-bench/src/bin/report.rs:
