/root/repo/target/debug/deps/ablation_epsilon-c55550faef201a8b.d: crates/psq-bench/src/bin/ablation_epsilon.rs Cargo.toml

/root/repo/target/debug/deps/libablation_epsilon-c55550faef201a8b.rmeta: crates/psq-bench/src/bin/ablation_epsilon.rs Cargo.toml

crates/psq-bench/src/bin/ablation_epsilon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
