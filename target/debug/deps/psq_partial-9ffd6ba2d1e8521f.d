/root/repo/target/debug/deps/psq_partial-9ffd6ba2d1e8521f.d: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

/root/repo/target/debug/deps/libpsq_partial-9ffd6ba2d1e8521f.rlib: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

/root/repo/target/debug/deps/libpsq_partial-9ffd6ba2d1e8521f.rmeta: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

crates/psq-partial/src/lib.rs:
crates/psq-partial/src/algorithm.rs:
crates/psq-partial/src/baseline.rs:
crates/psq-partial/src/example12.rs:
crates/psq-partial/src/model.rs:
crates/psq-partial/src/optimizer.rs:
crates/psq-partial/src/plan.rs:
crates/psq-partial/src/recursive.rs:
crates/psq-partial/src/robustness.rs:
