/root/repo/target/debug/deps/engine_throughput-8bc64219fe80c167.d: crates/psq-bench/benches/engine_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libengine_throughput-8bc64219fe80c167.rmeta: crates/psq-bench/benches/engine_throughput.rs Cargo.toml

crates/psq-bench/benches/engine_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
