/root/repo/target/debug/deps/theorem2-0f32a419855c442d.d: crates/psq-bench/src/bin/theorem2.rs

/root/repo/target/debug/deps/theorem2-0f32a419855c442d: crates/psq-bench/src/bin/theorem2.rs

crates/psq-bench/src/bin/theorem2.rs:
