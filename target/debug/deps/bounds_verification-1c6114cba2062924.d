/root/repo/target/debug/deps/bounds_verification-1c6114cba2062924.d: crates/psq-bounds/tests/bounds_verification.rs Cargo.toml

/root/repo/target/debug/deps/libbounds_verification-1c6114cba2062924.rmeta: crates/psq-bounds/tests/bounds_verification.rs Cargo.toml

crates/psq-bounds/tests/bounds_verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
