/root/repo/target/debug/deps/partial_search_properties-c7f57b95988bf3b2.d: crates/psq-partial/tests/partial_search_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpartial_search_properties-c7f57b95988bf3b2.rmeta: crates/psq-partial/tests/partial_search_properties.rs Cargo.toml

crates/psq-partial/tests/partial_search_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
