/root/repo/target/debug/deps/figure3-004c29236dd4b29a.d: crates/psq-bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-004c29236dd4b29a.rmeta: crates/psq-bench/src/bin/figure3.rs Cargo.toml

crates/psq-bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
