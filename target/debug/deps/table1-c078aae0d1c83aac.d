/root/repo/target/debug/deps/table1-c078aae0d1c83aac.d: crates/psq-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c078aae0d1c83aac: crates/psq-bench/src/bin/table1.rs

crates/psq-bench/src/bin/table1.rs:
