/root/repo/target/debug/deps/psq_parallel-743598e6ae5a2a45.d: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

/root/repo/target/debug/deps/psq_parallel-743598e6ae5a2a45: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

crates/psq-parallel/src/lib.rs:
crates/psq-parallel/src/chunks.rs:
crates/psq-parallel/src/pool.rs:
crates/psq-parallel/src/scope.rs:
