/root/repo/target/debug/deps/report-cee85939758f9055.d: crates/psq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-cee85939758f9055.rmeta: crates/psq-bench/src/bin/report.rs Cargo.toml

crates/psq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
