/root/repo/target/debug/deps/classical_table-657e306eecd40743.d: crates/psq-bench/src/bin/classical_table.rs

/root/repo/target/debug/deps/classical_table-657e306eecd40743: crates/psq-bench/src/bin/classical_table.rs

crates/psq-bench/src/bin/classical_table.rs:
