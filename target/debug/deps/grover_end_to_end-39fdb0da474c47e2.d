/root/repo/target/debug/deps/grover_end_to_end-39fdb0da474c47e2.d: crates/psq-grover/tests/grover_end_to_end.rs

/root/repo/target/debug/deps/grover_end_to_end-39fdb0da474c47e2: crates/psq-grover/tests/grover_end_to_end.rs

crates/psq-grover/tests/grover_end_to_end.rs:
