/root/repo/target/debug/deps/table1-3f707320f7f51ea2.d: crates/psq-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-3f707320f7f51ea2.rmeta: crates/psq-bench/src/bin/table1.rs Cargo.toml

crates/psq-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
