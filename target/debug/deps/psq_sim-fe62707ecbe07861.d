/root/repo/target/debug/deps/psq_sim-fe62707ecbe07861.d: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

/root/repo/target/debug/deps/psq_sim-fe62707ecbe07861: crates/psq-sim/src/lib.rs crates/psq-sim/src/circuit.rs crates/psq-sim/src/gates.rs crates/psq-sim/src/measure.rs crates/psq-sim/src/oracle.rs crates/psq-sim/src/query_counter.rs crates/psq-sim/src/reduced.rs crates/psq-sim/src/statevector.rs crates/psq-sim/src/trace.rs

crates/psq-sim/src/lib.rs:
crates/psq-sim/src/circuit.rs:
crates/psq-sim/src/gates.rs:
crates/psq-sim/src/measure.rs:
crates/psq-sim/src/oracle.rs:
crates/psq-sim/src/query_counter.rs:
crates/psq-sim/src/reduced.rs:
crates/psq-sim/src/statevector.rs:
crates/psq-sim/src/trace.rs:
