/root/repo/target/debug/deps/psq_bounds-309ded88fab128d0.d: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_bounds-309ded88fab128d0.rmeta: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs Cargo.toml

crates/psq-bounds/src/lib.rs:
crates/psq-bounds/src/hybrid.rs:
crates/psq-bounds/src/lemmas.rs:
crates/psq-bounds/src/theorem2.rs:
crates/psq-bounds/src/zalka.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
