/root/repo/target/debug/deps/figure4-8af12eef668c6e94.d: crates/psq-bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-8af12eef668c6e94: crates/psq-bench/src/bin/figure4.rs

crates/psq-bench/src/bin/figure4.rs:
