/root/repo/target/debug/deps/partial_quantum_search-76fdd665fc73322b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpartial_quantum_search-76fdd665fc73322b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
