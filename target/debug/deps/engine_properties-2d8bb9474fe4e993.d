/root/repo/target/debug/deps/engine_properties-2d8bb9474fe4e993.d: crates/psq-engine/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-2d8bb9474fe4e993: crates/psq-engine/tests/engine_properties.rs

crates/psq-engine/tests/engine_properties.rs:
