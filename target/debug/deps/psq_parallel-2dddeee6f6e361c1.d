/root/repo/target/debug/deps/psq_parallel-2dddeee6f6e361c1.d: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

/root/repo/target/debug/deps/libpsq_parallel-2dddeee6f6e361c1.rlib: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

/root/repo/target/debug/deps/libpsq_parallel-2dddeee6f6e361c1.rmeta: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs

crates/psq-parallel/src/lib.rs:
crates/psq-parallel/src/chunks.rs:
crates/psq-parallel/src/pool.rs:
crates/psq-parallel/src/scope.rs:
