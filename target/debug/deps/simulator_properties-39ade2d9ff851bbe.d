/root/repo/target/debug/deps/simulator_properties-39ade2d9ff851bbe.d: crates/psq-sim/tests/simulator_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_properties-39ade2d9ff851bbe.rmeta: crates/psq-sim/tests/simulator_properties.rs Cargo.toml

crates/psq-sim/tests/simulator_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
