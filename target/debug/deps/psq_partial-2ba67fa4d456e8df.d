/root/repo/target/debug/deps/psq_partial-2ba67fa4d456e8df.d: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_partial-2ba67fa4d456e8df.rmeta: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs Cargo.toml

crates/psq-partial/src/lib.rs:
crates/psq-partial/src/algorithm.rs:
crates/psq-partial/src/baseline.rs:
crates/psq-partial/src/example12.rs:
crates/psq-partial/src/model.rs:
crates/psq-partial/src/optimizer.rs:
crates/psq-partial/src/plan.rs:
crates/psq-partial/src/recursive.rs:
crates/psq-partial/src/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
