/root/repo/target/debug/deps/ablation_epsilon-9589cba17aa16120.d: crates/psq-bench/src/bin/ablation_epsilon.rs Cargo.toml

/root/repo/target/debug/deps/libablation_epsilon-9589cba17aa16120.rmeta: crates/psq-bench/src/bin/ablation_epsilon.rs Cargo.toml

crates/psq-bench/src/bin/ablation_epsilon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
