/root/repo/target/debug/deps/psq_classical-18186942c0429d64.d: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

/root/repo/target/debug/deps/psq_classical-18186942c0429d64: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

crates/psq-classical/src/lib.rs:
crates/psq-classical/src/adversary.rs:
crates/psq-classical/src/analysis.rs:
crates/psq-classical/src/full_search.rs:
crates/psq-classical/src/partial_search.rs:
