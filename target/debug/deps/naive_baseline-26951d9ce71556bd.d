/root/repo/target/debug/deps/naive_baseline-26951d9ce71556bd.d: crates/psq-bench/src/bin/naive_baseline.rs

/root/repo/target/debug/deps/naive_baseline-26951d9ce71556bd: crates/psq-bench/src/bin/naive_baseline.rs

crates/psq-bench/src/bin/naive_baseline.rs:
