/root/repo/target/debug/deps/zalka_bound-7c62fb9d1b35fb45.d: crates/psq-bench/src/bin/zalka_bound.rs

/root/repo/target/debug/deps/zalka_bound-7c62fb9d1b35fb45: crates/psq-bench/src/bin/zalka_bound.rs

crates/psq-bench/src/bin/zalka_bound.rs:
