/root/repo/target/debug/deps/psq_grover-3d6dd1075c4d84e4.d: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

/root/repo/target/debug/deps/psq_grover-3d6dd1075c4d84e4: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

crates/psq-grover/src/lib.rs:
crates/psq-grover/src/amplitude_amplification.rs:
crates/psq-grover/src/exact.rs:
crates/psq-grover/src/iteration.rs:
crates/psq-grover/src/standard.rs:
crates/psq-grover/src/theory.rs:
