/root/repo/target/debug/deps/psq_bounds-87eee1610f98c599.d: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

/root/repo/target/debug/deps/libpsq_bounds-87eee1610f98c599.rlib: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

/root/repo/target/debug/deps/libpsq_bounds-87eee1610f98c599.rmeta: crates/psq-bounds/src/lib.rs crates/psq-bounds/src/hybrid.rs crates/psq-bounds/src/lemmas.rs crates/psq-bounds/src/theorem2.rs crates/psq-bounds/src/zalka.rs

crates/psq-bounds/src/lib.rs:
crates/psq-bounds/src/hybrid.rs:
crates/psq-bounds/src/lemmas.rs:
crates/psq-bounds/src/theorem2.rs:
crates/psq-bounds/src/zalka.rs:
