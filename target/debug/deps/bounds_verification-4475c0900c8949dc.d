/root/repo/target/debug/deps/bounds_verification-4475c0900c8949dc.d: crates/psq-bounds/tests/bounds_verification.rs

/root/repo/target/debug/deps/bounds_verification-4475c0900c8949dc: crates/psq-bounds/tests/bounds_verification.rs

crates/psq-bounds/tests/bounds_verification.rs:
