/root/repo/target/debug/deps/psq_engine-e60fd8be3ccc7e1e.d: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

/root/repo/target/debug/deps/psq_engine-e60fd8be3ccc7e1e: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

crates/psq-engine/src/lib.rs:
crates/psq-engine/src/backends.rs:
crates/psq-engine/src/executor.rs:
crates/psq-engine/src/metrics.rs:
crates/psq-engine/src/planner.rs:
crates/psq-engine/src/spec.rs:
