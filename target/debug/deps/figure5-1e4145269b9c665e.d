/root/repo/target/debug/deps/figure5-1e4145269b9c665e.d: crates/psq-bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-1e4145269b9c665e.rmeta: crates/psq-bench/src/bin/figure5.rs Cargo.toml

crates/psq-bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
