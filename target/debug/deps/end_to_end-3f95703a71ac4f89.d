/root/repo/target/debug/deps/end_to_end-3f95703a71ac4f89.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3f95703a71ac4f89: tests/end_to_end.rs

tests/end_to_end.rs:
