/root/repo/target/debug/deps/psq_bench-d076e6cbbc636682.d: crates/psq-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_bench-d076e6cbbc636682.rmeta: crates/psq-bench/src/lib.rs Cargo.toml

crates/psq-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
