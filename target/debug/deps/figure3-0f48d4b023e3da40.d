/root/repo/target/debug/deps/figure3-0f48d4b023e3da40.d: crates/psq-bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-0f48d4b023e3da40.rmeta: crates/psq-bench/src/bin/figure3.rs Cargo.toml

crates/psq-bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
