/root/repo/target/debug/deps/engine_properties-6586eabfff42eefa.d: crates/psq-engine/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-6586eabfff42eefa.rmeta: crates/psq-engine/tests/engine_properties.rs Cargo.toml

crates/psq-engine/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
