/root/repo/target/debug/deps/psq_engine-58c1d58c363d0b89.d: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

/root/repo/target/debug/deps/libpsq_engine-58c1d58c363d0b89.rlib: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

/root/repo/target/debug/deps/libpsq_engine-58c1d58c363d0b89.rmeta: crates/psq-engine/src/lib.rs crates/psq-engine/src/backends.rs crates/psq-engine/src/executor.rs crates/psq-engine/src/metrics.rs crates/psq-engine/src/planner.rs crates/psq-engine/src/spec.rs

crates/psq-engine/src/lib.rs:
crates/psq-engine/src/backends.rs:
crates/psq-engine/src/executor.rs:
crates/psq-engine/src/metrics.rs:
crates/psq-engine/src/planner.rs:
crates/psq-engine/src/spec.rs:
