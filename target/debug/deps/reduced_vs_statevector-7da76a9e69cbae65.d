/root/repo/target/debug/deps/reduced_vs_statevector-7da76a9e69cbae65.d: crates/psq-bench/benches/reduced_vs_statevector.rs Cargo.toml

/root/repo/target/debug/deps/libreduced_vs_statevector-7da76a9e69cbae65.rmeta: crates/psq-bench/benches/reduced_vs_statevector.rs Cargo.toml

crates/psq-bench/benches/reduced_vs_statevector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
