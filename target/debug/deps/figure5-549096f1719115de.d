/root/repo/target/debug/deps/figure5-549096f1719115de.d: crates/psq-bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-549096f1719115de: crates/psq-bench/src/bin/figure5.rs

crates/psq-bench/src/bin/figure5.rs:
