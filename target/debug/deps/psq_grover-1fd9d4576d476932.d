/root/repo/target/debug/deps/psq_grover-1fd9d4576d476932.d: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_grover-1fd9d4576d476932.rmeta: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs Cargo.toml

crates/psq-grover/src/lib.rs:
crates/psq-grover/src/amplitude_amplification.rs:
crates/psq-grover/src/exact.rs:
crates/psq-grover/src/iteration.rs:
crates/psq-grover/src/standard.rs:
crates/psq-grover/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
