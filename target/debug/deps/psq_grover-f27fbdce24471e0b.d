/root/repo/target/debug/deps/psq_grover-f27fbdce24471e0b.d: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

/root/repo/target/debug/deps/libpsq_grover-f27fbdce24471e0b.rlib: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

/root/repo/target/debug/deps/libpsq_grover-f27fbdce24471e0b.rmeta: crates/psq-grover/src/lib.rs crates/psq-grover/src/amplitude_amplification.rs crates/psq-grover/src/exact.rs crates/psq-grover/src/iteration.rs crates/psq-grover/src/standard.rs crates/psq-grover/src/theory.rs

crates/psq-grover/src/lib.rs:
crates/psq-grover/src/amplitude_amplification.rs:
crates/psq-grover/src/exact.rs:
crates/psq-grover/src/iteration.rs:
crates/psq-grover/src/standard.rs:
crates/psq-grover/src/theory.rs:
