/root/repo/target/debug/deps/theorem2-2affc5f86f53e448.d: crates/psq-bench/src/bin/theorem2.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem2-2affc5f86f53e448.rmeta: crates/psq-bench/src/bin/theorem2.rs Cargo.toml

crates/psq-bench/src/bin/theorem2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
