/root/repo/target/debug/deps/psq_math-2087898bc98232f1.d: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs

/root/repo/target/debug/deps/libpsq_math-2087898bc98232f1.rlib: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs

/root/repo/target/debug/deps/libpsq_math-2087898bc98232f1.rmeta: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs

crates/psq-math/src/lib.rs:
crates/psq-math/src/angle.rs:
crates/psq-math/src/approx.rs:
crates/psq-math/src/bits.rs:
crates/psq-math/src/complex.rs:
crates/psq-math/src/matrix.rs:
crates/psq-math/src/optimize.rs:
crates/psq-math/src/stats.rs:
crates/psq-math/src/vec_ops.rs:
