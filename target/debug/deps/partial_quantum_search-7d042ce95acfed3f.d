/root/repo/target/debug/deps/partial_quantum_search-7d042ce95acfed3f.d: src/lib.rs

/root/repo/target/debug/deps/partial_quantum_search-7d042ce95acfed3f: src/lib.rs

src/lib.rs:
