/root/repo/target/debug/deps/partial_quantum_search-0e95df98e52fe40b.d: src/lib.rs

/root/repo/target/debug/deps/libpartial_quantum_search-0e95df98e52fe40b.rlib: src/lib.rs

/root/repo/target/debug/deps/libpartial_quantum_search-0e95df98e52fe40b.rmeta: src/lib.rs

src/lib.rs:
