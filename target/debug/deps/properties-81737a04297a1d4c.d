/root/repo/target/debug/deps/properties-81737a04297a1d4c.d: crates/psq-math/tests/properties.rs

/root/repo/target/debug/deps/properties-81737a04297a1d4c: crates/psq-math/tests/properties.rs

crates/psq-math/tests/properties.rs:
