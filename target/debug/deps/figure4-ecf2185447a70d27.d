/root/repo/target/debug/deps/figure4-ecf2185447a70d27.d: crates/psq-bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-ecf2185447a70d27.rmeta: crates/psq-bench/src/bin/figure4.rs Cargo.toml

crates/psq-bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
