/root/repo/target/debug/deps/naive_baseline-3e987879910f1a92.d: crates/psq-bench/src/bin/naive_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libnaive_baseline-3e987879910f1a92.rmeta: crates/psq-bench/src/bin/naive_baseline.rs Cargo.toml

crates/psq-bench/src/bin/naive_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
