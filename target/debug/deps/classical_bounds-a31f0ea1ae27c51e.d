/root/repo/target/debug/deps/classical_bounds-a31f0ea1ae27c51e.d: crates/psq-classical/tests/classical_bounds.rs

/root/repo/target/debug/deps/classical_bounds-a31f0ea1ae27c51e: crates/psq-classical/tests/classical_bounds.rs

crates/psq-classical/tests/classical_bounds.rs:
