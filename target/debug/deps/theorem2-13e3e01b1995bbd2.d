/root/repo/target/debug/deps/theorem2-13e3e01b1995bbd2.d: crates/psq-bench/src/bin/theorem2.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem2-13e3e01b1995bbd2.rmeta: crates/psq-bench/src/bin/theorem2.rs Cargo.toml

crates/psq-bench/src/bin/theorem2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
