/root/repo/target/debug/deps/psq_parallel-02fe03bd4d5049fb.d: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_parallel-02fe03bd4d5049fb.rmeta: crates/psq-parallel/src/lib.rs crates/psq-parallel/src/chunks.rs crates/psq-parallel/src/pool.rs crates/psq-parallel/src/scope.rs Cargo.toml

crates/psq-parallel/src/lib.rs:
crates/psq-parallel/src/chunks.rs:
crates/psq-parallel/src/pool.rs:
crates/psq-parallel/src/scope.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
