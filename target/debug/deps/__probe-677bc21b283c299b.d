/root/repo/target/debug/deps/__probe-677bc21b283c299b.d: crates/psq-bench/src/bin/__probe.rs

/root/repo/target/debug/deps/__probe-677bc21b283c299b: crates/psq-bench/src/bin/__probe.rs

crates/psq-bench/src/bin/__probe.rs:
