/root/repo/target/debug/deps/ablation_robustness-7345779f2801dd41.d: crates/psq-bench/src/bin/ablation_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_robustness-7345779f2801dd41.rmeta: crates/psq-bench/src/bin/ablation_robustness.rs Cargo.toml

crates/psq-bench/src/bin/ablation_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
