/root/repo/target/debug/deps/engine_serving-8ae6455b89d2b05f.d: tests/engine_serving.rs Cargo.toml

/root/repo/target/debug/deps/libengine_serving-8ae6455b89d2b05f.rmeta: tests/engine_serving.rs Cargo.toml

tests/engine_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
