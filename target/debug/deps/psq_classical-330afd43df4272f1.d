/root/repo/target/debug/deps/psq_classical-330afd43df4272f1.d: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

/root/repo/target/debug/deps/libpsq_classical-330afd43df4272f1.rlib: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

/root/repo/target/debug/deps/libpsq_classical-330afd43df4272f1.rmeta: crates/psq-classical/src/lib.rs crates/psq-classical/src/adversary.rs crates/psq-classical/src/analysis.rs crates/psq-classical/src/full_search.rs crates/psq-classical/src/partial_search.rs

crates/psq-classical/src/lib.rs:
crates/psq-classical/src/adversary.rs:
crates/psq-classical/src/analysis.rs:
crates/psq-classical/src/full_search.rs:
crates/psq-classical/src/partial_search.rs:
