/root/repo/target/debug/deps/psq_bench-dba6609029209a3a.d: crates/psq-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_bench-dba6609029209a3a.rmeta: crates/psq-bench/src/lib.rs Cargo.toml

crates/psq-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
