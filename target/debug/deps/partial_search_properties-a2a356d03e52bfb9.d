/root/repo/target/debug/deps/partial_search_properties-a2a356d03e52bfb9.d: crates/psq-partial/tests/partial_search_properties.rs

/root/repo/target/debug/deps/partial_search_properties-a2a356d03e52bfb9: crates/psq-partial/tests/partial_search_properties.rs

crates/psq-partial/tests/partial_search_properties.rs:
