/root/repo/target/debug/deps/figure1-16ac0fb33a13e67a.d: crates/psq-bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-16ac0fb33a13e67a: crates/psq-bench/src/bin/figure1.rs

crates/psq-bench/src/bin/figure1.rs:
