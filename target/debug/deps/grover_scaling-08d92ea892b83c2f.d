/root/repo/target/debug/deps/grover_scaling-08d92ea892b83c2f.d: crates/psq-bench/benches/grover_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libgrover_scaling-08d92ea892b83c2f.rmeta: crates/psq-bench/benches/grover_scaling.rs Cargo.toml

crates/psq-bench/benches/grover_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
