/root/repo/target/debug/deps/figure3-f7dc995acc3f6ff2.d: crates/psq-bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-f7dc995acc3f6ff2: crates/psq-bench/src/bin/figure3.rs

crates/psq-bench/src/bin/figure3.rs:
