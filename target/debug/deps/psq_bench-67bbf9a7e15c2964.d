/root/repo/target/debug/deps/psq_bench-67bbf9a7e15c2964.d: crates/psq-bench/src/lib.rs

/root/repo/target/debug/deps/libpsq_bench-67bbf9a7e15c2964.rlib: crates/psq-bench/src/lib.rs

/root/repo/target/debug/deps/libpsq_bench-67bbf9a7e15c2964.rmeta: crates/psq-bench/src/lib.rs

crates/psq-bench/src/lib.rs:
