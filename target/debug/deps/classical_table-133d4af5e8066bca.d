/root/repo/target/debug/deps/classical_table-133d4af5e8066bca.d: crates/psq-bench/src/bin/classical_table.rs Cargo.toml

/root/repo/target/debug/deps/libclassical_table-133d4af5e8066bca.rmeta: crates/psq-bench/src/bin/classical_table.rs Cargo.toml

crates/psq-bench/src/bin/classical_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
