/root/repo/target/debug/deps/psq_math-2b9ccc56ea0a54b7.d: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs Cargo.toml

/root/repo/target/debug/deps/libpsq_math-2b9ccc56ea0a54b7.rmeta: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs Cargo.toml

crates/psq-math/src/lib.rs:
crates/psq-math/src/angle.rs:
crates/psq-math/src/approx.rs:
crates/psq-math/src/bits.rs:
crates/psq-math/src/complex.rs:
crates/psq-math/src/matrix.rs:
crates/psq-math/src/optimize.rs:
crates/psq-math/src/stats.rs:
crates/psq-math/src/vec_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
