/root/repo/target/debug/deps/psq_math-090320ab61c2082c.d: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs

/root/repo/target/debug/deps/psq_math-090320ab61c2082c: crates/psq-math/src/lib.rs crates/psq-math/src/angle.rs crates/psq-math/src/approx.rs crates/psq-math/src/bits.rs crates/psq-math/src/complex.rs crates/psq-math/src/matrix.rs crates/psq-math/src/optimize.rs crates/psq-math/src/stats.rs crates/psq-math/src/vec_ops.rs

crates/psq-math/src/lib.rs:
crates/psq-math/src/angle.rs:
crates/psq-math/src/approx.rs:
crates/psq-math/src/bits.rs:
crates/psq-math/src/complex.rs:
crates/psq-math/src/matrix.rs:
crates/psq-math/src/optimize.rs:
crates/psq-math/src/stats.rs:
crates/psq-math/src/vec_ops.rs:
