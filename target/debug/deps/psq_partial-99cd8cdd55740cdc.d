/root/repo/target/debug/deps/psq_partial-99cd8cdd55740cdc.d: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

/root/repo/target/debug/deps/psq_partial-99cd8cdd55740cdc: crates/psq-partial/src/lib.rs crates/psq-partial/src/algorithm.rs crates/psq-partial/src/baseline.rs crates/psq-partial/src/example12.rs crates/psq-partial/src/model.rs crates/psq-partial/src/optimizer.rs crates/psq-partial/src/plan.rs crates/psq-partial/src/recursive.rs crates/psq-partial/src/robustness.rs

crates/psq-partial/src/lib.rs:
crates/psq-partial/src/algorithm.rs:
crates/psq-partial/src/baseline.rs:
crates/psq-partial/src/example12.rs:
crates/psq-partial/src/model.rs:
crates/psq-partial/src/optimizer.rs:
crates/psq-partial/src/plan.rs:
crates/psq-partial/src/recursive.rs:
crates/psq-partial/src/robustness.rs:
