/root/repo/target/debug/examples/quickstart-861ae094ded3a70c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-861ae094ded3a70c: examples/quickstart.rs

examples/quickstart.rs:
