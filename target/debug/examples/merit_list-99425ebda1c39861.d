/root/repo/target/debug/examples/merit_list-99425ebda1c39861.d: examples/merit_list.rs Cargo.toml

/root/repo/target/debug/examples/libmerit_list-99425ebda1c39861.rmeta: examples/merit_list.rs Cargo.toml

examples/merit_list.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
