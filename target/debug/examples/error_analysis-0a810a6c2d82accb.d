/root/repo/target/debug/examples/error_analysis-0a810a6c2d82accb.d: examples/error_analysis.rs Cargo.toml

/root/repo/target/debug/examples/liberror_analysis-0a810a6c2d82accb.rmeta: examples/error_analysis.rs Cargo.toml

examples/error_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
