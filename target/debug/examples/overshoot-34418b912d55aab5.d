/root/repo/target/debug/examples/overshoot-34418b912d55aab5.d: examples/overshoot.rs Cargo.toml

/root/repo/target/debug/examples/libovershoot-34418b912d55aab5.rmeta: examples/overshoot.rs Cargo.toml

examples/overshoot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
