/root/repo/target/debug/examples/recursive_search-0cdef8fb9ff7076b.d: examples/recursive_search.rs Cargo.toml

/root/repo/target/debug/examples/librecursive_search-0cdef8fb9ff7076b.rmeta: examples/recursive_search.rs Cargo.toml

examples/recursive_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
