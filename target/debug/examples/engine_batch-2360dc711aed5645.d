/root/repo/target/debug/examples/engine_batch-2360dc711aed5645.d: examples/engine_batch.rs Cargo.toml

/root/repo/target/debug/examples/libengine_batch-2360dc711aed5645.rmeta: examples/engine_batch.rs Cargo.toml

examples/engine_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
