/root/repo/target/debug/examples/error_analysis-9dc7fb1b741dc181.d: examples/error_analysis.rs

/root/repo/target/debug/examples/error_analysis-9dc7fb1b741dc181: examples/error_analysis.rs

examples/error_analysis.rs:
