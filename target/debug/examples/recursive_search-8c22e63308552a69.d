/root/repo/target/debug/examples/recursive_search-8c22e63308552a69.d: examples/recursive_search.rs

/root/repo/target/debug/examples/recursive_search-8c22e63308552a69: examples/recursive_search.rs

examples/recursive_search.rs:
