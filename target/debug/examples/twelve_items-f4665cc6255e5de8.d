/root/repo/target/debug/examples/twelve_items-f4665cc6255e5de8.d: examples/twelve_items.rs Cargo.toml

/root/repo/target/debug/examples/libtwelve_items-f4665cc6255e5de8.rmeta: examples/twelve_items.rs Cargo.toml

examples/twelve_items.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
