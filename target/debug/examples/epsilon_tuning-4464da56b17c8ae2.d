/root/repo/target/debug/examples/epsilon_tuning-4464da56b17c8ae2.d: examples/epsilon_tuning.rs

/root/repo/target/debug/examples/epsilon_tuning-4464da56b17c8ae2: examples/epsilon_tuning.rs

examples/epsilon_tuning.rs:
