/root/repo/target/debug/examples/overshoot-a9a2b17ce36d56d7.d: examples/overshoot.rs

/root/repo/target/debug/examples/overshoot-a9a2b17ce36d56d7: examples/overshoot.rs

examples/overshoot.rs:
