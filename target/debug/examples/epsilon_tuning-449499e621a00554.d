/root/repo/target/debug/examples/epsilon_tuning-449499e621a00554.d: examples/epsilon_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libepsilon_tuning-449499e621a00554.rmeta: examples/epsilon_tuning.rs Cargo.toml

examples/epsilon_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
