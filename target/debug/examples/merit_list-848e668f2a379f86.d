/root/repo/target/debug/examples/merit_list-848e668f2a379f86.d: examples/merit_list.rs

/root/repo/target/debug/examples/merit_list-848e668f2a379f86: examples/merit_list.rs

examples/merit_list.rs:
