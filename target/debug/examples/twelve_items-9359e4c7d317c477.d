/root/repo/target/debug/examples/twelve_items-9359e4c7d317c477.d: examples/twelve_items.rs

/root/repo/target/debug/examples/twelve_items-9359e4c7d317c477: examples/twelve_items.rs

examples/twelve_items.rs:
