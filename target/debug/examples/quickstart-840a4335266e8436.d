/root/repo/target/debug/examples/quickstart-840a4335266e8436.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-840a4335266e8436.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
