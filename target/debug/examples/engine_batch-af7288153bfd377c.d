/root/repo/target/debug/examples/engine_batch-af7288153bfd377c.d: examples/engine_batch.rs

/root/repo/target/debug/examples/engine_batch-af7288153bfd377c: examples/engine_batch.rs

examples/engine_batch.rs:
