//! End-to-end serving test: a JSON batch of 100+ mixed jobs goes through the
//! facade's engine exactly as the `psq-engine` binary would process it —
//! serialise, parse back, execute on the pool, re-serialise — and the
//! results must span every backend, be overwhelmingly correct, and be
//! bit-identical (wall times aside) to a second run and to per-job direct
//! execution.

use partial_quantum_search::engine::generate_mixed_batch;
use partial_quantum_search::prelude::*;

#[test]
fn json_batch_of_mixed_jobs_serves_end_to_end() {
    // 120 jobs through the wire format, like `psq-engine --gen 120 | psq-engine -`.
    let jobs = generate_mixed_batch(120, 99);
    let wire = serde_json::to_string(&jobs).expect("jobs serialise");
    let parsed: Vec<SearchJob> = serde_json::from_str(&wire).expect("jobs parse back");
    assert_eq!(jobs, parsed, "wire format round-trips the batch");

    let engine = Engine::new(EngineConfig::default());
    let report = engine.run_batch(&parsed);

    assert_eq!(report.results.len(), 120, "every job produces a result");
    assert!(report.rejected.is_empty());
    assert_eq!(
        report.metrics.backend_jobs.backends_used(),
        7,
        "mix spans all backends, including recursive full-address and sparse"
    );
    assert!(
        report.metrics.backend_jobs.recursive > 0
            && report.metrics.recursive_levels > report.metrics.backend_jobs.recursive,
        "full-address jobs descend through multiple partial-search levels"
    );
    assert!(
        report.metrics.backend_jobs.sparse > 0,
        "huge-N sparse arm ran"
    );
    // The mix includes noisy huge-N sparse trajectories; at √N-scale query
    // counts even a tiny per-query rate scrambles most of them (faithful
    // physics), so the near-certainty floor applies to the ideal jobs only.
    let noisy = parsed
        .iter()
        .filter(|job| job.effective_noise().is_some())
        .count() as u64;
    assert!(noisy > 0, "the mix exercises noisy jobs");
    assert!(
        report.metrics.jobs_correct + noisy >= 118,
        "ideal partial search almost never misses (got {}/120 with {noisy} noisy)",
        report.metrics.jobs_correct
    );
    assert!(report.metrics.throughput_jobs_per_s > 0.0);
    assert!(
        report.metrics.plan_cache.hits > 0,
        "repeated shapes hit the cache"
    );

    // The report itself is servable JSON.
    let out = serde_json::to_string_pretty(&report).expect("report serialises");
    let back: BatchReport = serde_json::from_str(&out).expect("report parses back");
    assert_eq!(report, back);
}

#[test]
fn batch_execution_is_reproducible_and_matches_single_job_runs() {
    let jobs = generate_mixed_batch(100, 31);
    let first = Engine::new(EngineConfig {
        threads: Some(8),
        ..EngineConfig::default()
    })
    .run_batch(&jobs);
    let second = Engine::new(EngineConfig {
        threads: Some(3),
        ..EngineConfig::default()
    })
    .run_batch(&jobs);
    let solo_engine = Engine::new(EngineConfig {
        threads: Some(1),
        ..EngineConfig::default()
    });
    for ((job, a), b) in jobs.iter().zip(&first.results).zip(&second.results) {
        assert_eq!(
            a.deterministic_fields(),
            b.deterministic_fields(),
            "job {} diverged across thread counts",
            job.id
        );
        let solo = solo_engine.run_job(job).expect("job runs alone");
        assert_eq!(
            a.deterministic_fields(),
            solo.deterministic_fields(),
            "job {} diverged between batch and direct execution",
            job.id
        );
    }
}

#[test]
fn zero_error_jobs_route_classical_and_never_miss() {
    let jobs: Vec<SearchJob> = (0..32)
        .map(|id| SearchJob::new(id, 512, 4, (id * 97) % 512).with_error_target(0.0))
        .collect();
    let report = Engine::new(EngineConfig::default()).run_batch(&jobs);
    assert_eq!(report.results.len(), 32);
    for r in &report.results {
        assert!(
            matches!(
                r.backend,
                Backend::ClassicalDeterministic | Backend::ClassicalRandomized
            ),
            "zero-error job must route to a classical backend, got {:?}",
            r.backend
        );
        assert!(r.correct, "classical block-exclusion search is zero-error");
    }
}
