//! Workspace-level end-to-end tests exercised through the facade crate:
//! the full pipeline from oracle to answer, across both simulators and all
//! strategies, the way a downstream user would drive it.

use partial_quantum_search::prelude::*;
use partial_quantum_search::{classical, grover, partial};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn quickstart_snippet_from_the_readme_works() {
    let db = Database::new(1 << 12, 1234);
    let partition = Partition::new(1 << 12, 8);
    let mut rng = StdRng::seed_from_u64(1);
    let run = PartialSearch::new().run_statevector(&db, &partition, &mut rng);
    assert!(run.outcome.is_correct());
    assert!(run.outcome.queries < 50);
    assert!(run.success_probability > 0.999);
}

#[test]
fn every_strategy_answers_the_same_instance_consistently() {
    let n = 1u64 << 12;
    let k = 8u64;
    let target = 3210;
    let mut rng = StdRng::seed_from_u64(5);
    let partition = Partition::new(n, k);
    let true_block = partition.block_of(target);

    // Classical deterministic.
    let db = Database::new(n, target);
    let classical_det = classical::deterministic_partial(&db, &partition);
    assert_eq!(classical_det.reported_block, true_block);

    // Classical randomized.
    let db = Database::new(n, target);
    let classical_rand = classical::randomized_partial(&db, &partition, &mut rng);
    assert_eq!(classical_rand.reported_block, true_block);

    // Naive quantum block elimination.
    let db = Database::new(n, target);
    let naive = partial::naive_partial_search(&db, &partition, &mut rng);
    assert_eq!(naive.reported_block, true_block);

    // GRK partial search.
    let db = Database::new(n, target);
    let grk = PartialSearch::new().run_statevector(&db, &partition, &mut rng);
    assert_eq!(grk.outcome.reported_block, true_block);

    // Full quantum search (answers more than was asked).
    let db = Database::new(n, target);
    let full = grover::search_verified(&db, 8, &mut rng);
    assert_eq!(full.reported_target, target);

    // Query ordering: GRK < naive < full quantum << classical.
    assert!(grk.outcome.queries < naive.queries);
    assert!(naive.queries <= full.queries + 2);
    assert!(full.queries < classical_rand.queries);
}

#[test]
fn the_paper_headline_numbers_hold_through_the_facade() {
    // Theorem 1 + Table 1, driven entirely through re-exports.
    let table = partial::table1();
    assert_eq!(table.len(), 7);
    for row in &table[1..] {
        assert!(row.lower < row.upper);
    }
    // K = 2 upper bound 0.555, K = 32 upper bound 0.725.
    assert!((table[1].upper - 0.555).abs() < 2e-3);
    assert!((table[6].upper - 0.725).abs() < 2e-3);

    // Theorem 2 through the bounds crate.
    let lb = partial_quantum_search::bounds::partial_search_lower_bound_coefficient(32.0);
    assert!((lb - 0.647).abs() < 1e-3);
}

#[test]
fn query_accounting_is_identical_across_simulators_and_plans() {
    for &(exp, k) in &[(10u32, 2u64), (12, 8), (14, 16)] {
        let n = 1u64 << exp;
        let mut rng = StdRng::seed_from_u64(exp as u64);
        let db = Database::new(n, n - 7);
        let partition = Partition::new(n, k);
        let search = PartialSearch::new();

        let plan = search.plan(n as f64, k as f64);
        let sv = search.run_statevector(&db, &partition, &mut rng);
        let red = search.run_reduced(n as f64, k as f64);

        assert_eq!(plan.total_queries, sv.outcome.queries);
        assert_eq!(plan.total_queries, red.queries);
        assert!((sv.success_probability - red.success_probability).abs() < 1e-9);
        assert!((red.success_probability - plan.predicted_success_probability).abs() < 1e-9);
    }
}

#[test]
fn partial_search_never_reports_an_empty_or_out_of_range_block() {
    let mut rng = StdRng::seed_from_u64(99);
    for &k in &[2u64, 3, 4, 6, 12] {
        let n = 1200u64; // divisible by all the ks above
        let db = Database::new(n, 777);
        let partition = Partition::new(n, k);
        let run = PartialSearch::tuned().run_statevector(&db, &partition, &mut rng);
        assert!(run.outcome.reported_block < k);
        assert!(run.outcome.is_correct());
    }
}

#[test]
fn sure_success_grover_and_the_recursion_compose() {
    // Use the sure-success full search to verify what the recursion found.
    let mut rng = StdRng::seed_from_u64(31);
    let n = 1u64 << 12;
    let db = Database::new(n, 2024);
    let recursion = RecursiveSearch::new(n, 4).run(&db, &mut rng);
    db.reset_queries();
    let exact = grover::search_exact_statevector(&db, &mut rng);
    assert_eq!(recursion.outcome.reported_target, exact.reported_target);
    assert_eq!(exact.reported_target, 2024);
}
