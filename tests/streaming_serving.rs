//! Facade-level test of the streaming serving layer: the prelude exposes
//! `Server`/`ServeConfig`, a pipe session round-trips a mixed NDJSON job
//! stream, and the streamed results are bit-identical to running the same
//! jobs through `Engine::run_batch` directly.

use partial_quantum_search::engine::generate_mixed_batch;
use partial_quantum_search::prelude::*;
use partial_quantum_search::serve::protocol::{parse_response, Response};
use partial_quantum_search::serve::testio::SharedSink;

#[test]
fn pipe_stream_through_the_facade_matches_batch_execution() {
    let jobs = generate_mixed_batch(40, 17);
    let input: String = jobs
        .iter()
        .map(|job| serde_json::to_string(job).expect("jobs serialise") + "\n")
        .collect();

    let server = Server::start(ServeConfig {
        engine: EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        },
        coalescer: CoalescerConfig {
            max_batch: 16,
            max_delay_us: 500,
        },
        ..ServeConfig::default()
    });
    let sink = SharedSink::default();
    let summary = server
        .serve_pipe(input.as_bytes(), sink.clone())
        .expect("pipe session");
    assert_eq!(summary.lines_in, 40);

    let mut streamed: Vec<SearchResult> = sink
        .lines()
        .iter()
        .map(|line| match parse_response(line).expect("well-formed") {
            Response::Result(result) => *result,
            other => panic!("expected results only, got {other:?}"),
        })
        .collect();
    streamed.sort_by_key(|r| r.job_id);

    let reference = Engine::new(EngineConfig {
        threads: Some(1),
        ..EngineConfig::default()
    })
    .run_batch(&jobs);
    assert_eq!(streamed.len(), reference.results.len());
    for (s, r) in streamed.iter().zip(&reference.results) {
        assert_eq!(
            s.deterministic_fields(),
            r.deterministic_fields(),
            "job {} diverged between stream and batch",
            r.job_id
        );
    }

    let metrics: ServeMetrics = server.metrics();
    assert_eq!(metrics.jobs_completed, 40);
    assert!(metrics.batches >= 3, "max_batch 16 forces multiple batches");
    assert!(metrics.latency_us_p99 >= metrics.latency_us_p50);
    assert!(metrics.latency_us_p99 > 0.0);
    server.finish();
}
