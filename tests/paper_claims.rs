//! One test per *quantitative claim* in the paper, so `cargo test` doubles as
//! a reproduction checklist.  Each test's name cites the claim it checks.

use partial_quantum_search::prelude::*;
use partial_quantum_search::{bounds, classical, grover, partial};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §1.1: "Using a simple randomized classical search algorithm one can find
/// an element in such a database using, on an average, N/2 queries."
#[test]
fn claim_classical_full_search_costs_n_over_2() {
    let n = 1e9;
    let exact = classical::randomized_full_expected_queries(n);
    assert!((exact / (n / 2.0) - 1.0).abs() < 1e-6);
}

/// §1.1: "The expected number of queries made by this algorithm is
/// N/2·(1 − 1/K²)" and "no classical randomized algorithm can do better".
#[test]
fn claim_classical_partial_search_costs_n_over_2_times_1_minus_k_squared() {
    for &k in &[2.0, 4.0, 8.0, 32.0] {
        let n = 1e9;
        let algorithm = classical::randomized_partial_expected_queries(n, k);
        let bound = classical::appendix_a_lower_bound(n, k);
        let paper = (n / 2.0) * (1.0 - 1.0 / (k * k));
        assert!((algorithm / paper - 1.0).abs() < 1e-6, "k = {k}");
        assert!((bound / paper - 1.0).abs() < 1e-6, "k = {k}");
    }
}

/// §1.2: the naive quantum strategy needs (π/4)√((K−1)N/K) ≈ (π/4)(1 − 1/2K)√N.
#[test]
fn claim_naive_quantum_baseline_saves_one_over_2k() {
    for &k in &[4.0, 16.0, 256.0] {
        let coeff = partial::naive_coefficient(k);
        let paper = std::f64::consts::FRAC_PI_4 * (1.0 - 1.0 / (2.0 * k));
        assert!((coeff - paper).abs() < 0.1 / k, "k = {k}");
    }
}

/// §1.3 / Figure 1: twelve items, three blocks, two queries, block known with
/// certainty, item itself with probability 3/4.
#[test]
fn claim_figure_1_worked_example() {
    for target in 0..12 {
        let run = partial::example12::run(target);
        assert_eq!(run.queries, 2);
        assert!((run.block_probability - 1.0).abs() < 1e-12);
        assert!((run.target_probability - 0.75).abs() < 1e-12);
    }
}

/// §2.1: the standard search algorithm uses ~(π/4)√N queries and is optimal.
#[test]
fn claim_grover_uses_pi_over_4_sqrt_n_queries() {
    for exp in [16u32, 24, 32] {
        let n = (1u64 << exp) as f64;
        let iters = partial_quantum_search::math::angle::optimal_grover_iterations(n) as f64;
        assert!((iters - grover::full_search_queries(n)).abs() <= 1.0);
    }
}

/// Theorem 1 (upper bound): (π/4)(1 − c_K)√N queries with c_K ≥ 0.42/√K, and
/// success probability 1 − O(1/√N).
#[test]
fn claim_theorem_1_upper_bound() {
    for &k in &[64.0, 256.0, 1024.0] {
        let n = (1u64 << 40) as f64;
        let run = PartialSearch::new().run_reduced(n, k);
        let coefficient = run.queries as f64 / n.sqrt();
        let ck = 1.0 - coefficient / std::f64::consts::FRAC_PI_4;
        assert!(ck >= 0.42 / k.sqrt(), "k = {k}: c_K = {ck}");
        assert!(1.0 - run.success_probability < 10.0 / n.sqrt(), "k = {k}");
    }
}

/// Theorem 1's table: the optimum coefficients for K = 2, 3, 4, 5, 8, 32.
#[test]
fn claim_section_3_1_table() {
    let expected_upper = [0.555, 0.592, 0.615, 0.633, 0.664, 0.725];
    let expected_lower = [0.23, 0.332, 0.393, 0.434, 0.508, 0.647];
    let rows = partial::table1();
    for (i, row) in rows[1..].iter().enumerate() {
        assert!((row.upper - expected_upper[i]).abs() < 2e-3, "row {i}");
        assert!((row.lower - expected_lower[i]).abs() < 2e-3, "row {i}");
    }
}

/// Theorem 2 (lower bound): α_K ≥ (π/4)(1 − 1/√K), derived by reduction to
/// Zalka's bound.
#[test]
fn claim_theorem_2_lower_bound() {
    for &k in &[2.0, 8.0, 32.0, 1024.0] {
        let lower = bounds::partial_search_lower_bound_coefficient(k);
        let upper = partial::optimal_epsilon(k).coefficient;
        assert!(lower <= upper, "k = {k}");
        // And the reduction equality the proof rests on:
        let total = bounds::reduction_total_queries(lower, 1.0, k);
        assert!(
            (total - std::f64::consts::FRAC_PI_4).abs() < 1e-12,
            "k = {k}"
        );
    }
}

/// §4: "we converge on the target state after making a total of at most
/// α(1 + 1/√K + 1/K + …) ≤ α·√K/(√K−1)·√N queries" — run the reduction and
/// check the accounting.
#[test]
fn claim_section_4_reduction_accounting() {
    let mut rng = StdRng::seed_from_u64(8);
    let n = 1u64 << 14;
    let k = 4u64;
    let db = Database::new(n, 5);
    let report = RecursiveSearch::new(n, k).run(&db, &mut rng);
    assert!(report.outcome.is_correct());
    let coefficient = partial::optimal_epsilon(k as f64).coefficient;
    let series = bounds::reduction_total_queries(coefficient, n as f64, k as f64);
    assert!((report.outcome.queries as f64 - series).abs() / series < 0.2);
}

/// Theorem 3 / Appendix B: T ≥ (π/4)√N(1 − O(√ε + N^{-1/4})), verified by the
/// hybrid-argument audit of an actual run.
#[test]
fn claim_theorem_3_zalka_with_small_error() {
    let n = 128usize;
    let t = partial_quantum_search::math::angle::optimal_grover_iterations(n as f64) as usize;
    let audit = bounds::HybridAccounting::evaluate(n, t);
    assert!(audit.chain_holds(1e-9));
    let closed_form = bounds::zalka_lower_bound(n as f64, audit.worst_error);
    assert!(audit.implied_lower_bound >= closed_form - 1.0);
    assert!(audit.implied_lower_bound <= t as f64 + 1e-9);
}

/// Abstract: "Our algorithm returns the correct answer with probability
/// 1 − O(1/√N)" — measured, not just predicted.
#[test]
fn claim_abstract_success_probability() {
    let mut rng = StdRng::seed_from_u64(123);
    let n = 1u64 << 14;
    let partition = Partition::new(n, 4);
    let mut wrong = 0u32;
    let trials = 60;
    for t in 0..trials {
        let db = Database::new(n, (t * 271) % n);
        let run = PartialSearch::new().run_statevector(&db, &partition, &mut rng);
        if !run.outcome.is_correct() {
            wrong += 1;
        }
    }
    // The exact error per run is ~1e-6 here; even one wrong answer in 60
    // would be astronomically unlikely unless the algorithm were broken.
    assert_eq!(wrong, 0);
}
