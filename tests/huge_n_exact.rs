//! Huge-`N` exact search end to end: a `N = 2^30` full-address recursive job
//! and sparse block jobs round-trip the engine and the serve pipe, and the
//! per-level query counts of the recursive descent clear the Theorem-2
//! `α_K·√N` floor computed by `psq-bounds`.
//!
//! This is the facade-level half of the sparse-backend proof: the crate-level
//! differential harnesses (`psq-sim` and `psq-engine`
//! `tests/backend_differential.rs`) establish that the backends agree; this
//! file establishes that the *served* huge-`N` path — NDJSON in, NDJSON out —
//! is the same computation, and that its cost sits where the paper's lower
//! bound says it must.

use partial_quantum_search::bounds::theorem2;
use partial_quantum_search::partial::{derive_seed, RecursiveSearch};
use partial_quantum_search::prelude::*;
use partial_quantum_search::serve::protocol::{parse_response, Response};
use partial_quantum_search::serve::testio::SharedSink;
use partial_quantum_search::sim::scratch::AmplitudeScratch;
use std::collections::HashMap;

const HUGE_N: u64 = 1 << 30;

fn engine() -> Engine {
    Engine::new(EngineConfig {
        threads: Some(2),
        ..EngineConfig::default()
    })
}

/// Streams `jobs` through a pipe serving session and returns the parsed
/// results keyed by job id.
fn round_trip_pipe(jobs: &[SearchJob]) -> HashMap<u64, SearchResult> {
    let server = Server::start(ServeConfig {
        engine: EngineConfig {
            threads: Some(2),
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    });
    let input: String = jobs
        .iter()
        .map(|job| serde_json::to_string(job).expect("jobs serialise") + "\n")
        .collect();
    let sink = SharedSink::default();
    let summary = server
        .serve_pipe(input.as_bytes(), sink.clone())
        .expect("pipe session");
    assert_eq!(summary.lines_in, jobs.len() as u64);
    let mut by_id = HashMap::new();
    for line in sink.lines().iter() {
        match parse_response(line).expect("well-formed response line") {
            Response::Result(result) => {
                assert!(by_id.insert(result.job_id, *result).is_none(), "id twice");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(by_id.len(), jobs.len(), "every line answered once");
    server.finish();
    by_id
}

/// `N = 2^30` full-address recursive job: engine and pipe agree bit for bit,
/// the exact address comes back, and every quantum level of the descent
/// spends at least the Theorem-2 lower bound `α_K·√(level size)` queries.
#[test]
fn huge_n_recursive_round_trip_clears_the_theorem2_floor_per_level() {
    let target = 0x2345_6789u64; // < 2^30
    let job = SearchJob::full_address(1, HUGE_N, 4, target).with_seed(424_242);
    let engine = engine();
    let direct = engine.run_job(&job).expect("huge-N recursive job plans");
    assert_eq!(direct.backend, Backend::Recursive);
    assert_eq!(direct.address_found, Some(target), "exact address resolved");
    assert!(direct.correct);
    // 2^30 shrinking by K = 4 per level down to the ~N^{1/3} brute-force
    // cutoff: ~10 quantum levels.
    assert!(direct.levels >= 9, "descended {} levels", direct.levels);

    // The same NDJSON line through the serve pipe is the same computation.
    let streamed = round_trip_pipe(std::slice::from_ref(&job));
    assert_eq!(
        streamed[&1].deterministic_fields(),
        direct.deterministic_fields(),
        "pipe round trip diverged from direct execution"
    );

    // Rebuild the descent exactly as the engine ran it (same plan cutoff,
    // same per-trial seed derivation) to audit the per-level query counts
    // the summed engine result cannot show.
    let plan = engine.planner().plan(&job).expect("plans");
    let search = RecursiveSearch::new(job.n, job.k).with_statevector_cutoff(plan.sv_cutoff);
    let mut scratch = AmplitudeScratch::new();
    let outcome = search.run_seeded(job.n, job.target, derive_seed(job.seed, 0), &mut scratch);
    assert_eq!(
        outcome.outcome.queries, direct.queries,
        "rebuilt descent is the served execution"
    );
    assert_eq!(outcome.quantum_levels(), direct.levels);

    let k = job.k as f64;
    for level in outcome.levels.iter().filter(|l| !l.is_brute_force()) {
        let floor = theorem2::partial_search_lower_bound_queries(level.size as f64, k);
        assert!(
            level.queries as f64 >= floor,
            "level of size {} spent {} queries, below the α_K·√N floor {:.1}",
            level.size,
            level.queries,
            floor
        );
    }
    // And in aggregate the whole descent costs at least one full-size
    // partial search — the floor the reduction argument charges.
    assert!(
        direct.queries as f64 >= theorem2::partial_search_lower_bound_queries(HUGE_N as f64, k)
    );
}

/// Sparse huge-`N` block jobs — ideal and noisy, hint and `Auto` — stream
/// through the pipe next to the recursive job, come back tagged
/// `"backend":"sparse"`, and match direct engine execution bit for bit.
#[test]
fn huge_n_sparse_jobs_round_trip_the_pipe_next_to_a_recursive_job() {
    let noise = partial_quantum_search::engine::NoiseSpec {
        depolarizing: 0.005,
        dephasing: 0.0,
        oracle_fault: 0.005,
    };
    let jobs = vec![
        SearchJob::new(10, HUGE_N, 64, HUGE_N - 7).with_backend(BackendHint::Sparse),
        // Auto above the dense ceiling under collapse-shaped noise resolves
        // to the sparse backend.
        SearchJob::new(11, HUGE_N, 8, 12_345)
            .with_noise(noise)
            .with_trials(3),
        SearchJob::full_address(12, HUGE_N, 4, 0x0BAD_CAFE).with_seed(7),
    ];
    let streamed = round_trip_pipe(&jobs);
    let engine = engine();
    for job in &jobs {
        let direct = engine.run_job(job).expect("direct run");
        assert_eq!(
            streamed[&job.id].deterministic_fields(),
            direct.deterministic_fields(),
            "job {} diverged between pipe and direct execution",
            job.id
        );
    }
    assert_eq!(streamed[&10].backend, Backend::Sparse);
    assert!(streamed[&10].correct, "ideal sparse finds the block");
    assert_eq!(
        streamed[&11].backend,
        Backend::Sparse,
        "Auto resolves sparse"
    );
    assert_eq!(streamed[&12].backend, Backend::Recursive);
    // The wire really says "Sparse": round-trip the result line itself.
    let line = serde_json::to_string(&streamed[&10]).expect("results serialise");
    assert!(line.contains("Sparse"), "backend tag on the wire: {line}");
}
